/**
 * @file
 * The compiler's strongest correctness property: for every benchmark,
 * MID, and zone model, the compiled hardware schedule is *unitarily
 * equivalent* to the logical program under the permutation its routing
 * SWAPs induce. Verified exactly with the statevector simulator on a
 * 3x3 device (also the substitute for the paper's Qiskit
 * cross-validation, which we cannot run offline).
 */
#include <gtest/gtest.h>
#include <tuple>

#include "benchmarks/benchmarks.h"
#include "core/compiler.h"
#include "sim/statevector.h"
#include "util/rng.h"

namespace naq {
namespace {

/** Random single-qubit product-state preparation (seeded). */
Circuit
random_prep(size_t num_qubits, uint64_t seed)
{
    Rng rng(seed);
    Circuit prep(num_qubits);
    for (QubitId q = 0; q < num_qubits; ++q) {
        prep.add(Gate::ry(q, rng.uniform() * 3.0));
        prep.add(Gate::rz(q, rng.uniform() * 3.0));
    }
    return prep;
}

/**
 * Check logical-vs-compiled equivalence on a random product input.
 * The logical state is compared against the device state read out at
 * the final mapping sites.
 */
void
expect_compiled_equivalent(const Circuit &logical,
                           const GridTopology &topo,
                           const CompileResult &res, uint64_t seed)
{
    ASSERT_TRUE(res.success) << res.failure_reason;
    const Circuit prep = random_prep(logical.num_qubits(), seed);

    // Logical reference.
    StateVector reference(logical.num_qubits());
    reference.apply(prep);
    reference.apply(logical);

    // Device execution: same preparation applied at the initial sites.
    StateVector device(topo.num_sites());
    Circuit device_prep(topo.num_sites());
    for (const Gate &g : prep.gates()) {
        Gate placed = g;
        placed.qubits = {res.compiled.initial_mapping[g.qubits[0]]};
        device_prep.add(placed);
    }
    device.apply(device_prep);
    device.apply(res.compiled.to_circuit());

    // Read out program qubits at their final sites; spares must be |0>.
    const StateVector extracted =
        device.extract_qubits(res.compiled.final_mapping);
    EXPECT_GT(extracted.fidelity(reference), 1.0 - 1e-9);
}

using Param = std::tuple<benchmarks::Kind, double, bool, bool>;

class CompiledEquivalence : public ::testing::TestWithParam<Param>
{
};

TEST_P(CompiledEquivalence, MatchesLogicalSemantics)
{
    const auto [kind, mid, zones, native] = GetParam();
    GridTopology topo(3, 3); // 9 sites: exactly simulable.
    const size_t size = std::max<size_t>(benchmarks::kind_min_size(kind),
                                         kind == benchmarks::Kind::BV
                                             ? 7
                                             : 6);
    const Circuit logical = benchmarks::make(kind, size, 11);

    CompilerOptions opts = CompilerOptions::neutral_atom(mid);
    opts.native_multiqubit = native;
    if (!zones)
        opts.zone = ZoneSpec::disabled();

    const CompileResult res = compile(logical, topo, opts);
    expect_compiled_equivalent(logical, topo, res, 99 + mid * 10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompiledEquivalence,
    ::testing::Combine(::testing::ValuesIn(benchmarks::all_kinds()),
                       ::testing::Values(1.0, 2.0, 3.0),
                       ::testing::Bool(),   // restriction zones on/off
                       ::testing::Bool())); // native multiqubit on/off

TEST(CompiledEquivalenceEdge, FullProgramOnExactFitDevice)
{
    GridTopology topo(3, 3);
    const Circuit logical = benchmarks::qaoa_maxcut(9, 21);
    const CompileResult res =
        compile(logical, topo, CompilerOptions::neutral_atom(2.0));
    expect_compiled_equivalent(logical, topo, res, 5);
}

TEST(CompiledEquivalenceEdge, DeviceWithHoles)
{
    GridTopology topo(4, 3);
    topo.deactivate(topo.site(1, 1));
    topo.deactivate(topo.site(3, 2));
    const Circuit logical = benchmarks::cuccaro(8);
    const CompileResult res =
        compile(logical, topo, CompilerOptions::neutral_atom(2.0));
    expect_compiled_equivalent(logical, topo, res, 6);
}

TEST(CompiledEquivalenceEdge, SuperconductingBaselineMode)
{
    GridTopology topo(3, 3);
    const Circuit logical = benchmarks::cnu(7);
    const CompileResult res =
        compile(logical, topo, CompilerOptions::superconducting_like());
    ASSERT_TRUE(res.success);
    // Everything decomposed to <= 2 operands.
    EXPECT_EQ(res.compiled.counts().multi_qubit, 0u);
    expect_compiled_equivalent(logical, topo, res, 7);
}

} // namespace
} // namespace naq
