#include "core/compiler.h"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "core/router.h"
#include "decompose/decompose.h"

namespace naq {
namespace {

TEST(CompilerTest, RefusesOversizedProgram)
{
    GridTopology topo(3, 3);
    const CompileResult res =
        compile(benchmarks::bv(10), topo,
                CompilerOptions::neutral_atom(2.0));
    EXPECT_FALSE(res.success);
    EXPECT_NE(res.failure_reason.find("wider"), std::string::npos);
}

TEST(CompilerTest, Mid1ForcesToffoliDecomposition)
{
    GridTopology topo(10, 10);
    const Circuit logical = benchmarks::cuccaro(10);
    const CompileResult res =
        compile(logical, topo, CompilerOptions::neutral_atom(1.0));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.compiled.counts().multi_qubit, 0u);
}

TEST(CompilerTest, Mid2KeepsToffoliNative)
{
    GridTopology topo(10, 10);
    const Circuit logical = benchmarks::cuccaro(10);
    const CompileResult res =
        compile(logical, topo, CompilerOptions::neutral_atom(2.0));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.compiled.counts().multi_qubit,
              logical.counts().multi_qubit);
}

TEST(CompilerTest, NativeOffAlwaysDecomposes)
{
    GridTopology topo(10, 10);
    CompilerOptions opts = CompilerOptions::neutral_atom(5.0);
    opts.native_multiqubit = false;
    const CompileResult res =
        compile(benchmarks::cnu(9), topo, opts);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.compiled.counts().multi_qubit, 0u);
}

TEST(CompilerTest, NativeToffoliSavesGatesAndDepth)
{
    GridTopology topo(10, 10);
    const Circuit logical = benchmarks::cuccaro(20);
    CompilerOptions native = CompilerOptions::neutral_atom(3.0);
    CompilerOptions decomposed = native;
    decomposed.native_multiqubit = false;
    const CompileResult a = compile(logical, topo, native);
    const CompileResult b = compile(logical, topo, decomposed);
    ASSERT_TRUE(a.success);
    ASSERT_TRUE(b.success);
    const CompiledStats sa = a.stats();
    const CompiledStats sb = b.stats();
    EXPECT_LT(sa.total(), sb.total());
    EXPECT_LT(sa.depth, sb.depth);
}

TEST(CompilerTest, GateCountShrinksWithMid)
{
    GridTopology topo(10, 10);
    const Circuit logical = benchmarks::bv(40);
    size_t prev = SIZE_MAX;
    for (double mid : {1.0, 3.0, 13.0}) {
        const CompileResult res =
            compile(logical, topo, CompilerOptions::neutral_atom(mid));
        ASSERT_TRUE(res.success);
        const size_t gates = res.stats().total();
        EXPECT_LE(gates, prev) << "MID " << mid;
        prev = gates;
    }
}

TEST(CompilerTest, FullConnectivityAddsNoSwaps)
{
    GridTopology topo(10, 10);
    for (benchmarks::Kind kind : benchmarks::all_kinds()) {
        const Circuit logical = benchmarks::make(kind, 30, 3);
        const CompileResult res = compile(
            logical, topo,
            CompilerOptions::neutral_atom(
                topo.full_connectivity_distance()));
        ASSERT_TRUE(res.success) << benchmarks::kind_name(kind);
        EXPECT_EQ(res.compiled.counts().routing_swaps, 0u)
            << benchmarks::kind_name(kind);
    }
}

TEST(CompilerTest, StatsSwapAccounting)
{
    GridTopology topo(10, 10);
    const CompileResult res =
        compile(benchmarks::bv(40), topo,
                CompilerOptions::neutral_atom(1.0));
    ASSERT_TRUE(res.success);
    const GateCounts counts = res.compiled.counts();
    const CompiledStats stats = res.stats();
    EXPECT_GT(counts.routing_swaps, 0u);
    EXPECT_EQ(stats.n2, counts.two_qubit + 2 * counts.swaps);
}

TEST(CompilerTest, EmptyCircuitCompiles)
{
    GridTopology topo(3, 3);
    Circuit empty(4);
    const CompileResult res =
        compile(empty, topo, CompilerOptions::neutral_atom(1.0));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.compiled.num_timesteps, 0u);
    EXPECT_EQ(res.compiled.initial_mapping.size(), 4u);
}

TEST(CompilerTest, SingleQubitProgramTrivial)
{
    GridTopology topo(2, 2);
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::measure(0));
    const CompileResult res =
        compile(c, topo, CompilerOptions::neutral_atom(1.0));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.compiled.counts().total, 1u);
    EXPECT_EQ(res.compiled.counts().measurements, 1u);
}

TEST(CompilerTest, QiskitStyleValidationLineGraph)
{
    // Offline stand-in for the paper's Qiskit cross-check: a
    // nearest-neighbour chain routed from an already-linear placement
    // needs zero SWAPs at MID 1 and exactly matches the logical gate
    // count and depth.
    GridTopology topo(1, 8);
    Circuit chain(8);
    std::vector<Site> identity;
    for (QubitId q = 0; q < 8; ++q)
        identity.push_back(topo.site(0, q));
    for (QubitId q = 0; q + 1 < 8; ++q)
        chain.add(Gate::cx(q, q + 1));
    CompilerOptions opts = CompilerOptions::superconducting_like();
    const RoutingResult res = route_circuit(chain, topo, identity, opts);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.compiled.counts().routing_swaps, 0u);
    EXPECT_EQ(res.compiled.counts().total, chain.counts().total);
    EXPECT_EQ(res.compiled.num_timesteps, chain.depth());
}

TEST(CompilerTest, FullCompileOfChainStaysNearOptimal)
{
    // With the greedy mapper in the loop the chain may pick up a few
    // SWAPs, but must stay within a small constant of optimal (the
    // paper reports "closely matched" Qiskit counts).
    GridTopology topo(2, 4);
    Circuit chain(8);
    for (QubitId q = 0; q + 1 < 8; ++q)
        chain.add(Gate::cx(q, q + 1));
    const CompileResult res =
        compile(chain, topo, CompilerOptions::superconducting_like());
    ASSERT_TRUE(res.success);
    EXPECT_LE(res.compiled.counts().routing_swaps, 6u);
}

TEST(CompilerTest, MaxParallelismBoundedByZones)
{
    GridTopology topo(10, 10);
    const Circuit logical = benchmarks::qaoa_maxcut(40, 9);
    CompilerOptions zoned = CompilerOptions::neutral_atom(4.0);
    CompilerOptions free = zoned;
    free.zone = ZoneSpec::disabled();
    const CompileResult a = compile(logical, topo, zoned);
    const CompileResult b = compile(logical, topo, free);
    ASSERT_TRUE(a.success);
    ASSERT_TRUE(b.success);
    EXPECT_LE(a.compiled.max_parallelism(),
              b.compiled.max_parallelism());
    EXPECT_GE(a.compiled.num_timesteps, b.compiled.num_timesteps);
}

} // namespace
} // namespace naq
