/**
 * @file
 * Router fuzzing: random circuits routed from random placements on
 * small devices must always succeed, respect every architectural
 * invariant, and preserve semantics exactly.
 */
#include <gtest/gtest.h>

#include "core/router.h"
#include "sim/statevector.h"
#include "topology/zone.h"
#include "util/rng.h"

namespace naq {
namespace {

Circuit
random_circuit(size_t num_qubits, size_t num_gates, Rng &rng)
{
    Circuit c(num_qubits);
    for (size_t i = 0; i < num_gates; ++i) {
        const QubitId a = QubitId(rng.uniform_int(num_qubits));
        QubitId b = QubitId(rng.uniform_int(num_qubits));
        if (b == a)
            b = QubitId((b + 1) % num_qubits);
        QubitId d = QubitId(rng.uniform_int(num_qubits));
        while (d == a || d == b)
            d = QubitId((d + 1) % num_qubits);
        switch (rng.uniform_int(6)) {
          case 0: c.add(Gate::h(a)); break;
          case 1: c.add(Gate::rz(a, rng.uniform() * 2)); break;
          case 2: c.add(Gate::cx(a, b)); break;
          case 3: c.add(Gate::cz(a, b)); break;
          case 4: c.add(Gate::cphase(a, b, rng.uniform())); break;
          case 5: c.add(Gate::ccx(a, b, d)); break;
        }
    }
    return c;
}

std::vector<Site>
random_placement(size_t num_qubits, const GridTopology &topo, Rng &rng)
{
    std::vector<Site> sites = topo.active_sites();
    rng.shuffle(sites);
    sites.resize(num_qubits);
    return sites;
}

class RouterFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RouterFuzz, RandomCircuitsFromRandomPlacements)
{
    Rng rng(GetParam());
    GridTopology topo(3, 3);
    const size_t num_qubits = 5 + rng.uniform_int(4); // 5..8
    const Circuit logical = random_circuit(num_qubits, 40, rng);

    CompilerOptions opts = CompilerOptions::neutral_atom(
        1.0 + rng.uniform() * 2.0); // MID in [1, 3)
    if (logical.max_arity() >= 3 &&
        opts.max_interaction_distance < 1.5)
        opts.max_interaction_distance = 1.5; // CCX needs sqrt(2).

    const std::vector<Site> placement =
        random_placement(num_qubits, topo, rng);
    const RoutingResult res =
        route_circuit(logical, topo, placement, opts);
    ASSERT_TRUE(res.success) << res.failure_reason;

    // Invariants: distances + zone disjointness per timestep.
    std::vector<std::vector<const ScheduledGate *>> steps(
        res.compiled.num_timesteps);
    for (const ScheduledGate &sg : res.compiled.schedule)
        steps[sg.timestep].push_back(&sg);
    for (const auto &step : steps) {
        std::vector<RestrictionZone> zones;
        for (const ScheduledGate *sg : step) {
            if (sg->gate.is_interaction()) {
                ASSERT_TRUE(topo.within_distance(
                    sg->gate.qubits, opts.max_interaction_distance));
            }
            RestrictionZone zone =
                make_zone(topo, sg->gate.qubits, opts.zone);
            for (const RestrictionZone &other : zones)
                ASSERT_FALSE(zones_conflict(topo, other, zone));
            zones.push_back(std::move(zone));
        }
    }

    // Exact semantics.
    StateVector reference(num_qubits);
    reference.apply(logical);
    StateVector device(topo.num_sites());
    // Initialize program qubits at their placement (basis |0>: no
    // prep needed), then run and extract.
    device.apply(res.compiled.to_circuit());
    const StateVector extracted =
        device.extract_qubits(res.compiled.final_mapping);
    ASSERT_GT(extracted.fidelity(reference), 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterFuzz,
                         ::testing::Range(uint64_t(1), uint64_t(26)));

} // namespace
} // namespace naq
