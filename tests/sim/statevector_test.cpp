#include "sim/statevector.h"

#include <cmath>
#include <gtest/gtest.h>
#include <numbers>

namespace naq {
namespace {

TEST(StateVectorTest, InitialState)
{
    StateVector sv(3);
    EXPECT_EQ(sv.dimension(), 8u);
    EXPECT_DOUBLE_EQ(sv.probability(0), 1.0);
    EXPECT_DOUBLE_EQ(sv.norm(), 1.0);
}

TEST(StateVectorTest, TooManyQubitsRejected)
{
    EXPECT_THROW(StateVector(27), std::invalid_argument);
}

TEST(StateVectorTest, XFlipsBit)
{
    StateVector sv(2);
    sv.apply(Gate::x(1));
    EXPECT_DOUBLE_EQ(sv.probability(0b10), 1.0);
}

TEST(StateVectorTest, HCreatesSuperposition)
{
    StateVector sv(1);
    sv.apply(Gate::h(0));
    EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(1), 0.5, 1e-12);
}

TEST(StateVectorTest, HSquaredIsIdentity)
{
    StateVector sv(1), ref(1);
    sv.apply(Gate::h(0));
    sv.apply(Gate::h(0));
    EXPECT_GT(sv.fidelity(ref), 1.0 - 1e-12);
}

TEST(StateVectorTest, CxActsOnlyWhenControlSet)
{
    StateVector sv(2);
    sv.apply(Gate::cx(0, 1));
    EXPECT_DOUBLE_EQ(sv.probability(0), 1.0); // control 0: no-op

    sv.set_basis_state(0b01); // control (qubit 0) = 1
    sv.apply(Gate::cx(0, 1));
    EXPECT_DOUBLE_EQ(sv.probability(0b11), 1.0);
}

TEST(StateVectorTest, BellState)
{
    StateVector sv(2);
    sv.apply(Gate::h(0));
    sv.apply(Gate::cx(0, 1));
    EXPECT_NEAR(sv.probability(0b00), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(0b11), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability_of_one(1), 0.5, 1e-12);
}

TEST(StateVectorTest, CcxTruthTable)
{
    for (uint64_t basis = 0; basis < 8; ++basis) {
        StateVector sv(3);
        sv.set_basis_state(basis);
        sv.apply(Gate::ccx(0, 1, 2));
        const uint64_t expected =
            ((basis & 0b11) == 0b11) ? (basis ^ 0b100) : basis;
        EXPECT_DOUBLE_EQ(sv.probability(expected), 1.0)
            << "basis " << basis;
    }
}

TEST(StateVectorTest, McxTruthTable)
{
    for (uint64_t basis = 0; basis < 16; ++basis) {
        StateVector sv(4);
        sv.set_basis_state(basis);
        sv.apply(Gate::mcx({0, 1, 2}, 3));
        const uint64_t expected =
            ((basis & 0b111) == 0b111) ? (basis ^ 0b1000) : basis;
        EXPECT_DOUBLE_EQ(sv.probability(expected), 1.0);
    }
}

TEST(StateVectorTest, SwapExchangesBits)
{
    StateVector sv(2);
    sv.set_basis_state(0b01);
    sv.apply(Gate::swap(0, 1));
    EXPECT_DOUBLE_EQ(sv.probability(0b10), 1.0);
    sv.apply(Gate::swap(0, 1));
    EXPECT_DOUBLE_EQ(sv.probability(0b01), 1.0);
}

TEST(StateVectorTest, CzPhasesOnlyOnes)
{
    StateVector sv(2);
    sv.apply(Gate::h(0));
    sv.apply(Gate::h(1));
    sv.apply(Gate::cz(0, 1));
    EXPECT_NEAR(sv.amplitude(0b11).real(), -0.5, 1e-12);
    EXPECT_NEAR(sv.amplitude(0b00).real(), 0.5, 1e-12);
}

TEST(StateVectorTest, CPhaseMatchesCzAtPi)
{
    StateVector a(2), b(2);
    for (auto *sv : {&a, &b}) {
        sv->apply(Gate::h(0));
        sv->apply(Gate::h(1));
    }
    a.apply(Gate::cz(0, 1));
    b.apply(Gate::cphase(0, 1, std::numbers::pi));
    EXPECT_GT(a.fidelity(b), 1.0 - 1e-12);
}

TEST(StateVectorTest, RzIsDiagonalPhase)
{
    StateVector sv(1);
    sv.apply(Gate::h(0));
    sv.apply(Gate::rz(0, std::numbers::pi / 2));
    // Probabilities unchanged by a diagonal gate.
    EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(1), 0.5, 1e-12);
}

TEST(StateVectorTest, RxPiIsXUpToPhase)
{
    StateVector a(1), b(1);
    a.apply(Gate::rx(0, std::numbers::pi));
    b.apply(Gate::x(0));
    EXPECT_GT(a.fidelity(b), 1.0 - 1e-12);
}

TEST(StateVectorTest, STGatesCompose)
{
    // T^2 = S, S^2 = Z.
    StateVector a(1), b(1);
    a.apply(Gate::h(0));
    b.apply(Gate::h(0));
    a.apply(Gate::t(0));
    a.apply(Gate::t(0));
    b.apply(Gate::s(0));
    EXPECT_GT(a.fidelity(b), 1.0 - 1e-12);
    a.apply(Gate::sdg(0));
    b.apply(Gate::sdg(0));
    EXPECT_GT(a.fidelity(b), 1.0 - 1e-12);
}

TEST(StateVectorTest, MeasureAndBarrierAreNoOps)
{
    StateVector sv(2), ref(2);
    sv.apply(Gate::h(0));
    ref.apply(Gate::h(0));
    sv.apply(Gate::measure(0));
    sv.apply(Gate::barrier({0, 1}));
    EXPECT_GT(sv.fidelity(ref), 1.0 - 1e-12);
}

TEST(StateVectorTest, NormPreservedByRandomCircuit)
{
    StateVector sv(4);
    Circuit c(4);
    c.add(Gate::h(0));
    c.add(Gate::ry(1, 0.3));
    c.add(Gate::cx(0, 2));
    c.add(Gate::ccx(0, 1, 3));
    c.add(Gate::cphase(2, 3, 1.1));
    c.add(Gate::swap(0, 3));
    sv.apply(c);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(StateVectorTest, MostProbable)
{
    StateVector sv(2);
    sv.apply(Gate::x(0));
    EXPECT_EQ(sv.most_probable(), 0b01u);
}

TEST(StateVectorTest, ExtractQubitsReordersAndDrops)
{
    StateVector sv(3);
    sv.apply(Gate::x(2));
    sv.apply(Gate::h(0));
    // Keep qubits {2, 0} -> new qubit 0 := old 2 (=1), new 1 := old 0.
    const StateVector small = sv.extract_qubits({2, 0});
    EXPECT_EQ(small.num_qubits(), 2u);
    EXPECT_NEAR(small.probability(0b01), 0.5, 1e-12);
    EXPECT_NEAR(small.probability(0b11), 0.5, 1e-12);
}

TEST(StateVectorTest, ExtractThrowsWhenDroppedQubitNonzero)
{
    StateVector sv(2);
    sv.apply(Gate::x(1));
    EXPECT_THROW(sv.extract_qubits({0}), std::runtime_error);
}

TEST(StateVectorTest, FidelityIgnoresGlobalPhase)
{
    StateVector a(1), b(1);
    a.apply(Gate::h(0));
    b.apply(Gate::h(0));
    b.apply(Gate::rz(0, 0.7)); // diagonal but not global...
    EXPECT_LT(a.fidelity(b), 1.0 - 1e-6);
    StateVector c(1);
    c.apply(Gate::z(0)); // global phase on |0> only state: none
    StateVector d(1);
    EXPECT_GT(c.fidelity(d), 1.0 - 1e-12);
}

} // namespace
} // namespace naq
