/**
 * @file
 * End-to-end smoke: a corpus QASM program compiles onto a device and
 * the compiled schedule simulates to a normalized, deterministic
 * state. This is the cheapest full-stack path through parser ->
 * compiler -> statevector, pinned so a regression in any layer trips
 * a 3-qubit test before the big equivalence suite runs.
 */
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "qasm/qasm.h"
#include "sim/statevector.h"

namespace naq {
namespace {

Circuit
teleport()
{
    const std::string root = NAQ_SOURCE_DIR;
    return read_qasm_file(root + "/tests/qasm/corpus/teleport.qasm");
}

TEST(CompiledSmokeTest, TeleportCompilesAndSimulates)
{
    const Circuit logical = teleport();
    ASSERT_EQ(logical.num_qubits(), 3u);

    const GridTopology topo(2, 2);
    const CompileResult res =
        compile(logical, topo, CompilerOptions::neutral_atom(2.0));
    ASSERT_TRUE(res.success) << res.failure_reason;

    StateVector state(topo.num_sites());
    state.apply(res.compiled.to_circuit());
    EXPECT_NEAR(state.norm(), 1.0, 1e-12);
}

TEST(CompiledSmokeTest, CompiledAmplitudesAreDeterministic)
{
    const Circuit logical = teleport();
    const auto simulate = [&logical] {
        const GridTopology topo(2, 2);
        const CompileResult res =
            compile(logical, topo, CompilerOptions::neutral_atom(2.0));
        EXPECT_TRUE(res.success);
        StateVector state(topo.num_sites());
        state.apply(res.compiled.to_circuit());
        return state;
    };
    const StateVector a = simulate();
    const StateVector b = simulate();
    ASSERT_EQ(a.dimension(), b.dimension());
    for (uint64_t i = 0; i < a.dimension(); ++i) {
        // Bitwise-equal amplitudes: same compile, same gate order,
        // same floating-point operations.
        EXPECT_EQ(a.amplitude(i).real(), b.amplitude(i).real());
        EXPECT_EQ(a.amplitude(i).imag(), b.amplitude(i).imag());
    }
}

TEST(CompiledSmokeTest, TeleportDeliversTheMessageState)
{
    // Teleportation moves msg's (ry 0.3, rz pi/5) state onto bob's
    // qubit; the compiled schedule must preserve that. Bob is logical
    // qubit 2 -> its hardware site via the final mapping.
    const Circuit logical = teleport();
    const GridTopology topo(2, 2);
    const CompileResult res =
        compile(logical, topo, CompilerOptions::neutral_atom(2.0));
    ASSERT_TRUE(res.success) << res.failure_reason;

    StateVector device(topo.num_sites());
    device.apply(res.compiled.to_circuit());

    const Site bob = res.compiled.final_mapping[2];
    // |<1|psi>|^2 of ry(0.3)|0> is sin^2(0.15); rz only adds phase.
    const double expect_p1 = std::sin(0.15) * std::sin(0.15);
    EXPECT_NEAR(device.probability_of_one(bob), expect_p1, 1e-9);
}

} // namespace
} // namespace naq
