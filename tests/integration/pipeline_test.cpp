/**
 * @file
 * End-to-end integration checks that the system reproduces the paper's
 * headline *qualitative* results (the benches print the quantitative
 * series).
 */
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "core/compiler.h"
#include "loss/shot_engine.h"
#include "noise/error_model.h"

namespace naq {
namespace {

TEST(PipelineTest, GateCountSavingsTaperWithMid)
{
    // Paper Fig. 3: large first-step savings, vanishing afterwards.
    GridTopology topo(10, 10);
    const Circuit logical = benchmarks::bv(60);
    std::vector<size_t> gates;
    for (double mid : {1.0, 2.0, 5.0, 13.0}) {
        const CompileResult res =
            compile(logical, topo, CompilerOptions::neutral_atom(mid));
        ASSERT_TRUE(res.success);
        gates.push_back(res.stats().total());
    }
    const double first_step =
        double(gates[0] - gates[1]) / double(gates[0]);
    const double last_step =
        double(gates[2] - gates[3]) / double(gates[2]);
    EXPECT_GT(first_step, 0.3); // Most benefit in the first increase.
    EXPECT_LT(last_step, 0.2);  // Diminishing returns at large MID.
    // MID 13 is globally connected: minimum possible gate count.
    EXPECT_EQ(gates.back(), logical.counts().total);
}

TEST(PipelineTest, RestrictionZonesSerializeParallelPrograms)
{
    // Paper Fig. 5: zone cost shows on parallel programs (QAOA).
    GridTopology topo(10, 10);
    const Circuit logical = benchmarks::qaoa_maxcut(40, 13);
    CompilerOptions zoned = CompilerOptions::neutral_atom(5.0);
    CompilerOptions ideal = zoned;
    ideal.zone = ZoneSpec::disabled();
    const CompileResult a = compile(logical, topo, zoned);
    const CompileResult b = compile(logical, topo, ideal);
    ASSERT_TRUE(a.success && b.success);
    EXPECT_GT(a.compiled.num_timesteps, b.compiled.num_timesteps);
    // Same gate volume: serialization, not extra work.
    EXPECT_NEAR(double(a.stats().total()), double(b.stats().total()),
                0.15 * double(b.stats().total()));
}

TEST(PipelineTest, NaBeatsScAtEqualErrorRates)
{
    // Paper Fig. 7: at the same p2, the NA compile (MID 3, native
    // Toffolis) out-succeeds the SC-style compile (MID 1, decomposed).
    GridTopology topo(10, 10);
    const Circuit logical = benchmarks::cuccaro(50);
    const CompileResult na =
        compile(logical, topo, CompilerOptions::neutral_atom(3.0));
    const CompileResult sc =
        compile(logical, topo, CompilerOptions::superconducting_like());
    ASSERT_TRUE(na.success && sc.success);
    for (double p2 : {1e-4, 1e-3, 1e-2}) {
        const double p_na = success_probability(
            na.stats(), ErrorModel::neutral_atom(p2));
        const double p_sc = success_probability(
            sc.stats(), ErrorModel::superconducting(p2));
        EXPECT_GT(p_na, p_sc) << "p2 = " << p2;
    }
}

TEST(PipelineTest, LargerProgramsRunnableOnNa)
{
    // Paper Fig. 8 at a fixed mid-range error rate.
    GridTopology topo(10, 10);
    std::vector<std::pair<size_t, CompiledStats>> na_runs, sc_runs;
    for (size_t size : {10, 20, 30, 40, 50, 60}) {
        const Circuit logical = benchmarks::qft_adder(size);
        const CompileResult na =
            compile(logical, topo, CompilerOptions::neutral_atom(3.0));
        const CompileResult sc = compile(
            logical, topo, CompilerOptions::superconducting_like());
        ASSERT_TRUE(na.success && sc.success);
        na_runs.emplace_back(size, na.stats());
        sc_runs.emplace_back(size, sc.stats());
    }
    const double p2 = 3e-4;
    EXPECT_GE(largest_runnable(na_runs, ErrorModel::neutral_atom(p2),
                               2.0 / 3.0),
              largest_runnable(sc_runs, ErrorModel::superconducting(p2),
                               2.0 / 3.0));
}

TEST(PipelineTest, ToleranceOrderingAcrossStrategies)
{
    // Paper Fig. 10: recompile >= reroute >= virtual remapping.
    const Circuit logical = benchmarks::cnu(29);
    auto tolerance = [&](StrategyKind kind, uint64_t seed) {
        GridTopology topo(10, 10);
        StrategyOptions so;
        so.kind = kind;
        so.device_mid = 4.0;
        so.enforce_swap_budget = false;
        auto strategy = make_strategy(so);
        EXPECT_TRUE(strategy->prepare(logical, topo));
        Rng rng(seed);
        return max_loss_tolerance(*strategy, topo, rng);
    };
    // Average a few trials to smooth randomness.
    double remap = 0, reroute = 0, recompile = 0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        remap += tolerance(StrategyKind::VirtualRemap, seed);
        reroute += tolerance(StrategyKind::MinorReroute, seed);
        recompile += tolerance(StrategyKind::FullRecompile, seed);
    }
    // Recompile and unbudgeted reroute both operate near the
    // structural ceiling (program/device ratio); allow a small noise
    // margin between them but both must dominate plain remapping.
    EXPECT_GE(recompile, reroute - 25);
    EXPECT_GE(reroute, remap);
    EXPECT_GE(recompile, remap);
}

TEST(PipelineTest, CompileSmallToleratesMoreThanPlainRemap)
{
    // Paper Sec. VI: compiling below the max distance buys shift slack.
    const Circuit logical = benchmarks::cuccaro(30);
    auto tolerance = [&](StrategyKind kind) {
        double total = 0;
        for (uint64_t seed = 1; seed <= 8; ++seed) {
            GridTopology topo(10, 10);
            StrategyOptions so;
            so.kind = kind;
            so.device_mid = 4.0;
            auto strategy = make_strategy(so);
            EXPECT_TRUE(strategy->prepare(logical, topo));
            Rng rng(seed * 100);
            total += max_loss_tolerance(*strategy, topo, rng);
        }
        return total / 8;
    };
    EXPECT_GT(tolerance(StrategyKind::CompileSmall),
              tolerance(StrategyKind::VirtualRemap));
}

TEST(PipelineTest, RecompilationOverheadExceedsReload)
{
    // Paper Fig. 12 note: recompilation (software) costs more wall
    // clock than just reloading; adaptive hardware strategies beat
    // both.
    const Circuit logical = benchmarks::cnu(29);
    auto overhead = [&](StrategyKind kind) {
        GridTopology topo(10, 10);
        StrategyOptions so;
        so.kind = kind;
        so.device_mid = 4.0;
        auto strategy = make_strategy(so);
        EXPECT_TRUE(strategy->prepare(logical, topo));
        ShotEngineOptions opts;
        opts.max_shots = 200;
        opts.seed = 4242;
        const ShotSummary sum = run_shots(*strategy, topo, opts);
        return sum.overhead_s() + sum.time_compile_s;
    };
    const double reload = overhead(StrategyKind::AlwaysReload);
    const double recompile = overhead(StrategyKind::FullRecompile);
    const double remap = overhead(StrategyKind::VirtualRemap);
    EXPECT_GT(recompile, reload);
    EXPECT_LT(remap, reload);
}

TEST(PipelineTest, AllBenchmarksCompileAtPaperScale)
{
    // Smoke the full paper configuration: sizes up to 100 on 10x10.
    GridTopology topo(10, 10);
    for (benchmarks::Kind kind : benchmarks::all_kinds()) {
        const Circuit logical = benchmarks::make(kind, 100, 2);
        const CompileResult res =
            compile(logical, topo, CompilerOptions::neutral_atom(3.0));
        EXPECT_TRUE(res.success)
            << benchmarks::kind_name(kind) << ": "
            << res.failure_reason;
    }
}

} // namespace
} // namespace naq
