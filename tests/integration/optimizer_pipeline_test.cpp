/**
 * @file
 * Integration: peephole optimizer feeding the compiler — the paper's
 * "other optimizations can be performed as well" pipeline order.
 */
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "core/compiler.h"
#include "opt/peephole.h"
#include "qasm/qasm.h"
#include "sim/statevector.h"
#include "util/rng.h"

namespace naq {
namespace {

/** Random circuit with deliberate redundancy to give the optimizer
 * something to chew on. */
Circuit
redundant_circuit(size_t num_qubits, uint64_t seed)
{
    Rng rng(seed);
    Circuit c(num_qubits);
    for (int i = 0; i < 60; ++i) {
        const QubitId a = QubitId(rng.uniform_int(num_qubits));
        QubitId b = QubitId(rng.uniform_int(num_qubits));
        if (b == a)
            b = QubitId((b + 1) % num_qubits);
        switch (rng.uniform_int(5)) {
          case 0:
            c.add(Gate::h(a));
            if (rng.bernoulli(0.5))
                c.add(Gate::h(a)); // Redundant pair.
            break;
          case 1:
            c.add(Gate::cx(a, b));
            if (rng.bernoulli(0.5))
                c.add(Gate::cx(a, b));
            break;
          case 2:
            c.add(Gate::rz(a, rng.uniform()));
            c.add(Gate::rz(a, rng.uniform())); // Always fusable.
            break;
          case 3: {
            QubitId target = QubitId((a + b) % num_qubits);
            while (target == a || target == b)
                target = QubitId((target + 1) % num_qubits);
            c.add(Gate::ccx(a, b, target));
            break;
          }
          case 4:
            c.add(Gate::swap(a, b));
            break;
        }
    }
    return c;
}

TEST(OptimizerPipelineTest, OptimizeThenCompilePreservesSemantics)
{
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        const Circuit original = redundant_circuit(6, seed);
        const Circuit optimized = peephole_optimize(original);
        ASSERT_LE(optimized.size(), original.size());

        GridTopology topo(3, 3);
        const CompileResult res = compile(
            optimized, topo, CompilerOptions::neutral_atom(2.0));
        ASSERT_TRUE(res.success) << res.failure_reason;

        // original (logical) vs compiled(optimized) on the device.
        StateVector logical(6);
        logical.apply(original);

        StateVector device(topo.num_sites());
        device.apply(res.compiled.to_circuit());
        const StateVector extracted =
            device.extract_qubits(res.compiled.final_mapping);
        EXPECT_GT(extracted.fidelity(logical), 1.0 - 1e-9)
            << "seed " << seed;
    }
}

TEST(OptimizerPipelineTest, OptimizerNeverHurtsCompiledCost)
{
    GridTopology topo(4, 4);
    for (uint64_t seed = 10; seed <= 12; ++seed) {
        const Circuit original = redundant_circuit(8, seed);
        const Circuit optimized = peephole_optimize(original);
        const CompileResult a = compile(
            original, topo, CompilerOptions::neutral_atom(2.0));
        const CompileResult b = compile(
            optimized, topo, CompilerOptions::neutral_atom(2.0));
        ASSERT_TRUE(a.success && b.success);
        // Fewer input gates must not inflate the compiled output by
        // more than routing noise.
        EXPECT_LE(b.stats().total(), a.stats().total() + 6)
            << "seed " << seed;
    }
}

TEST(OptimizerPipelineTest, QasmRoundTripThenOptimizeThenCompile)
{
    // Full interop chain: QASM in -> optimize -> compile -> QASM out.
    const Circuit original = redundant_circuit(6, 42);
    const Circuit reparsed = read_qasm(write_qasm(original));
    const Circuit optimized = peephole_optimize(reparsed);

    GridTopology topo(3, 3);
    const CompileResult res =
        compile(optimized, topo, CompilerOptions::neutral_atom(2.0));
    ASSERT_TRUE(res.success);
    const std::string routed_qasm =
        write_qasm(res.compiled.to_circuit());
    const Circuit routed = read_qasm(routed_qasm);
    EXPECT_EQ(routed.counts().total, res.compiled.counts().total);
}

} // namespace
} // namespace naq
