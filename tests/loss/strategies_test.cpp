#include "loss/strategies.h"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"

namespace naq {
namespace {

StrategyOptions
options_for(StrategyKind kind, double mid = 3.0)
{
    StrategyOptions opts;
    opts.kind = kind;
    opts.device_mid = mid;
    return opts;
}

/** First site the compiled program uses (deterministic). */
Site
first_used_site(const LossStrategy &strategy, const GridTopology &topo)
{
    for (Site s = 0; s < topo.num_sites(); ++s) {
        if (strategy.site_in_use(s))
            return s;
    }
    ADD_FAILURE() << "no used site found";
    return 0;
}

TEST(StrategyTest, NamesAndRegistry)
{
    EXPECT_EQ(all_strategies().size(), 6u);
    EXPECT_STREQ(strategy_name(StrategyKind::CompileSmallReroute),
                 "c. small+reroute");
    for (StrategyKind kind : all_strategies())
        EXPECT_NE(make_strategy(options_for(kind)), nullptr);
}

TEST(StrategyTest, SwapBudgetMatchesPaperExample)
{
    StrategyOptions opts;
    opts.budget_p2 = 0.035; // 96.5% two-qubit gate.
    opts.budget_drop = 0.5;
    EXPECT_EQ(opts.swap_budget(), 6u);
}

TEST(StrategyTest, AlwaysReloadDemandsReloadOnUsedLoss)
{
    GridTopology topo(10, 10);
    auto strategy = make_strategy(options_for(StrategyKind::AlwaysReload));
    ASSERT_TRUE(strategy->prepare(benchmarks::cuccaro(30), topo));

    const Site used = first_used_site(*strategy, topo);
    topo.deactivate(used);
    EXPECT_TRUE(strategy->on_loss(used, topo).needs_reload);

    // Spare loss is ignored.
    topo.activate_all();
    strategy->on_reload(topo);
    Site spare = 0;
    while (strategy->site_in_use(spare))
        ++spare;
    topo.deactivate(spare);
    EXPECT_FALSE(strategy->on_loss(spare, topo).needs_reload);
}

TEST(StrategyTest, VirtualRemapAbsorbsLossWithDistanceSlack)
{
    // A tiny 2-qubit program compiled at MID 3 only ever interacts at
    // distance 1, so a single one-site shift (distance <= 2 < 3) must
    // be absorbable without a reload.
    GridTopology topo(10, 10);
    Circuit tiny(2);
    tiny.add(Gate::cx(0, 1));
    auto strategy = make_strategy(options_for(StrategyKind::VirtualRemap));
    ASSERT_TRUE(strategy->prepare(tiny, topo));
    const Site used = first_used_site(*strategy, topo);
    topo.deactivate(used);
    const AdaptResult r = strategy->on_loss(used, topo);
    EXPECT_FALSE(r.needs_reload);
    EXPECT_EQ(strategy->fixup_swaps(), 0u);
}

TEST(StrategyTest, VirtualRemapReloadsWhenDistanceExceeded)
{
    // Repeated losses on a realistic program eventually stretch some
    // interaction past the MID: plain remapping must then reload
    // (paper: it "is only able to support a small amount of atom
    // loss").
    GridTopology topo(10, 10);
    auto strategy = make_strategy(options_for(StrategyKind::VirtualRemap));
    ASSERT_TRUE(strategy->prepare(benchmarks::cuccaro(30), topo));
    bool reloaded = false;
    for (int i = 0; i < 60 && !reloaded; ++i) {
        const Site used = first_used_site(*strategy, topo);
        topo.deactivate(used);
        reloaded = strategy->on_loss(used, topo).needs_reload;
    }
    EXPECT_TRUE(reloaded);
}

TEST(StrategyTest, RecompileAdaptsAndCounts)
{
    GridTopology topo(10, 10);
    auto strategy =
        make_strategy(options_for(StrategyKind::FullRecompile));
    ASSERT_TRUE(strategy->prepare(benchmarks::cnu(29), topo));
    EXPECT_EQ(strategy->compile_count(), 1u);

    const Site used = first_used_site(*strategy, topo);
    topo.deactivate(used);
    const AdaptResult r = strategy->on_loss(used, topo);
    EXPECT_TRUE(r.recompiled);
    EXPECT_FALSE(r.needs_reload);
    EXPECT_EQ(strategy->compile_count(), 2u);
    // The new program avoids the hole.
    EXPECT_FALSE(strategy->site_in_use(used));
}

TEST(StrategyTest, CompileSmallRequiresMidAtLeastThree)
{
    GridTopology topo(10, 10);
    auto strategy =
        make_strategy(options_for(StrategyKind::CompileSmall, 2.0));
    EXPECT_FALSE(strategy->prepare(benchmarks::cuccaro(30), topo));
    auto ok = make_strategy(options_for(StrategyKind::CompileSmall, 3.0));
    EXPECT_TRUE(ok->prepare(benchmarks::cuccaro(30), topo));
}

TEST(StrategyTest, CompileSmallStatsMatchSmallerMid)
{
    GridTopology topo(10, 10);
    const Circuit logical = benchmarks::cuccaro(30);
    auto small =
        make_strategy(options_for(StrategyKind::CompileSmall, 4.0));
    ASSERT_TRUE(small->prepare(logical, topo));

    CompilerOptions direct_opts = CompilerOptions::neutral_atom(3.0);
    const CompileResult direct = compile(logical, topo, direct_opts);
    ASSERT_TRUE(direct.success);
    EXPECT_EQ(small->compiled().counts().total,
              direct.compiled.counts().total);
}

TEST(StrategyTest, RerouteAccumulatesFixupSwaps)
{
    GridTopology topo(10, 10);
    StrategyOptions opts = options_for(StrategyKind::MinorReroute, 2.0);
    opts.enforce_swap_budget = false;
    auto strategy = make_strategy(opts);
    ASSERT_TRUE(strategy->prepare(benchmarks::cuccaro(30), topo));

    // Keep knocking out used atoms until a fix-up is required.
    Rng rng(5);
    bool saw_fixup = false;
    for (int i = 0; i < 40 && !saw_fixup; ++i) {
        const Site used = first_used_site(*strategy, topo);
        topo.deactivate(used);
        const AdaptResult r = strategy->on_loss(used, topo);
        if (r.needs_reload)
            break;
        saw_fixup = strategy->fixup_swaps() > 0;
    }
    EXPECT_TRUE(saw_fixup);
    // current_stats reflects the extra swaps as 3 CX each.
    const CompiledStats base = stats_of(strategy->compiled());
    EXPECT_EQ(strategy->current_stats().n2,
              base.n2 + 3 * strategy->fixup_swaps());
}

TEST(StrategyTest, BudgetForcesReloadSooner)
{
    const Circuit logical = benchmarks::cuccaro(30);

    auto run_until_reload = [&](bool budget) {
        GridTopology topo(10, 10);
        StrategyOptions opts =
            options_for(StrategyKind::MinorReroute, 2.0);
        opts.enforce_swap_budget = budget;
        auto strategy = make_strategy(opts);
        EXPECT_TRUE(strategy->prepare(logical, topo));
        size_t losses = 0;
        while (losses < 200) {
            const Site used = first_used_site(*strategy, topo);
            topo.deactivate(used);
            ++losses;
            if (strategy->on_loss(used, topo).needs_reload)
                break;
        }
        return losses;
    };

    EXPECT_LE(run_until_reload(true), run_until_reload(false));
}

TEST(StrategyTest, RemapReloadRestoresCleanState)
{
    GridTopology topo(10, 10);
    auto strategy =
        make_strategy(options_for(StrategyKind::CompileSmallReroute, 4.0));
    ASSERT_TRUE(strategy->prepare(benchmarks::cnu(29), topo));

    // Degrade until reload is demanded.
    size_t guard = 0;
    while (guard++ < 500) {
        const Site used = first_used_site(*strategy, topo);
        topo.deactivate(used);
        if (strategy->on_loss(used, topo).needs_reload)
            break;
    }
    topo.activate_all();
    strategy->on_reload(topo);
    EXPECT_EQ(strategy->fixup_swaps(), 0u);
    // The pristine program runs again: identity positions.
    const Site used = first_used_site(*strategy, topo);
    EXPECT_TRUE(strategy->site_in_use(used));
}

TEST(StrategyTest, PrepareFailsWhenProgramTooBig)
{
    GridTopology topo(4, 4);
    for (StrategyKind kind : all_strategies()) {
        auto strategy = make_strategy(options_for(kind));
        EXPECT_FALSE(strategy->prepare(benchmarks::cuccaro(30), topo))
            << strategy_name(kind);
    }
}

} // namespace
} // namespace naq
