/**
 * @file
 * The pinned contract between the two timing backends: under
 * `BackendProfile::contention_free(gate_time_s)` the device simulator
 * reproduces the closed-form `TimeModel` run bill — same shot history,
 * run time within 1e-9 s — on the full loss-strategy grid, and the
 * simulated timeline is bit-identical across reruns.
 */
#include "loss/timing.h"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "loss/shot_engine.h"

namespace naq {
namespace {

ShotSummary
run_with(const Circuit &logical, StrategyKind kind, TimingKind timing,
         uint64_t seed, bool record = false)
{
    GridTopology topo(10, 10);
    StrategyOptions sopts;
    sopts.kind = kind;
    sopts.device_mid = 3.0;
    const auto strategy = make_strategy(sopts);
    EXPECT_TRUE(strategy->prepare(logical, topo));
    ShotEngineOptions opts;
    opts.max_shots = 40;
    opts.seed = seed;
    opts.record_timeline = record;
    opts.timing = timing;
    opts.backend =
        desim::BackendProfile::contention_free(opts.time.gate_time_s);
    return run_shots(*strategy, topo, opts);
}

TEST(TimingAgreementTest, ContentionFreeSimMatchesClosedFormOnAllStrategies)
{
    const Circuit logical = benchmarks::cuccaro(30);
    for (const StrategyKind kind : all_strategies()) {
        SCOPED_TRACE(strategy_name(kind));
        const ShotSummary closed =
            run_with(logical, kind, TimingKind::Closed, 7);
        const ShotSummary sim =
            run_with(logical, kind, TimingKind::Sim, 7);
        // Identical Rng stream: the physical shot history agrees.
        EXPECT_EQ(sim.shots_attempted, closed.shots_attempted);
        EXPECT_EQ(sim.shots_successful, closed.shots_successful);
        EXPECT_EQ(sim.losses, closed.losses);
        EXPECT_EQ(sim.reloads, closed.reloads);
        EXPECT_EQ(sim.recompiles, closed.recompiles);
        // And the simulated run bill reproduces the closed form.
        EXPECT_NEAR(sim.time_run_s, closed.time_run_s,
                    1e-9 * double(closed.shots_attempted));
        EXPECT_EQ(sim.sim_shots, sim.shots_attempted);
        EXPECT_GT(sim.sim_events, 0u);
        // Contention-free: nothing ever queues.
        EXPECT_EQ(sim.sim_waits, 0u);
        EXPECT_EQ(sim.sim_max_queue, 0u);
    }
}

TEST(TimingAgreementTest, SimTimelineIsBitIdenticalAcrossReruns)
{
    const Circuit logical = benchmarks::cnu(29);
    const ShotSummary a = run_with(logical, StrategyKind::MinorReroute,
                                   TimingKind::Sim, 11, true);
    const ShotSummary b = run_with(logical, StrategyKind::MinorReroute,
                                   TimingKind::Sim, 11, true);
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].kind, b.timeline[i].kind);
        EXPECT_EQ(a.timeline[i].start_s, b.timeline[i].start_s);
        EXPECT_EQ(a.timeline[i].duration_s, b.timeline[i].duration_s);
    }
    // A different seed produces a different shot history.
    const ShotSummary c = run_with(logical, StrategyKind::MinorReroute,
                                   TimingKind::Sim, 12, true);
    EXPECT_NE(a.losses, c.losses);
}

TEST(TimingAgreementTest, SimTimelineContainsDeviceEvents)
{
    const Circuit logical = benchmarks::cnu(29);
    const ShotSummary sim =
        run_with(logical, StrategyKind::CompileSmallReroute,
                 TimingKind::Sim, 5, true);
    size_t moves = 0, measures = 0, runs = 0;
    for (const TimelineEvent &ev : sim.timeline) {
        if (ev.kind == TimelineEvent::Kind::Move)
            ++moves;
        else if (ev.kind == TimelineEvent::Kind::Measure)
            ++measures;
        else if (ev.kind == TimelineEvent::Kind::Run)
            ++runs;
    }
    // The simulated timeline replaces the opaque Run envelope with
    // per-operation device events.
    EXPECT_GT(runs, 0u);
    EXPECT_GT(measures, 0u);
    // cnu(29) at MID 3 needs routing, so transports appear.
    EXPECT_GT(moves, 0u);

    const ShotSummary closed =
        run_with(logical, StrategyKind::CompileSmallReroute,
                 TimingKind::Closed, 5, true);
    for (const TimelineEvent &ev : closed.timeline) {
        EXPECT_NE(ev.kind, TimelineEvent::Kind::Move);
        EXPECT_NE(ev.kind, TimelineEvent::Kind::Measure);
    }
}

TEST(TimingAgreementTest, ParseTimingKindRoundTrips)
{
    EXPECT_EQ(parse_timing_kind("closed"), TimingKind::Closed);
    EXPECT_EQ(parse_timing_kind("sim"), TimingKind::Sim);
    EXPECT_STREQ(timing_kind_name(TimingKind::Closed), "closed");
    EXPECT_STREQ(timing_kind_name(TimingKind::Sim), "sim");
    EXPECT_THROW(parse_timing_kind("psychic"), std::runtime_error);
}

} // namespace
} // namespace naq
