/**
 * @file
 * Multi-seed shot fan-out (`run_shots_many`): parallel execution must
 * be bit-identical to sequential, and each slot must equal a direct
 * `run_shots` call with that seed on a fresh device — the per-worker
 * topology-copy discipline the ROADMAP's "parallel shot sweeps" item
 * required.
 */
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "loss/shot_engine.h"

namespace naq {
namespace {

void
expect_identical_summary(const ShotSummary &a, const ShotSummary &b)
{
    EXPECT_EQ(a.shots_attempted, b.shots_attempted);
    EXPECT_EQ(a.shots_successful, b.shots_successful);
    EXPECT_EQ(a.losses, b.losses);
    EXPECT_EQ(a.interfering_losses, b.interfering_losses);
    EXPECT_EQ(a.remaps, b.remaps);
    EXPECT_EQ(a.recompiles, b.recompiles);
    EXPECT_EQ(a.recompile_cache_hits, b.recompile_cache_hits);
    EXPECT_EQ(a.reloads, b.reloads);
    EXPECT_EQ(a.successful_before_first_reload,
              b.successful_before_first_reload);
    EXPECT_EQ(a.time_compile_s, b.time_compile_s);
    EXPECT_EQ(a.time_run_s, b.time_run_s);
    EXPECT_EQ(a.time_fluorescence_s, b.time_fluorescence_s);
    EXPECT_EQ(a.time_fixup_s, b.time_fixup_s);
    EXPECT_EQ(a.time_reload_s, b.time_reload_s);
    EXPECT_EQ(a.time_recompile_s, b.time_recompile_s);
}

TEST(ShotFanoutTest, ParallelBitIdenticalToSequential)
{
    const Circuit logical = benchmarks::cuccaro(14);
    StrategyOptions sopts;
    sopts.kind = StrategyKind::CompileSmallReroute;
    sopts.device_mid = 4.0;
    const GridTopology pristine(10, 10);

    ShotEngineOptions engine;
    engine.max_shots = 40;

    std::vector<uint64_t> seeds;
    for (uint64_t s = 0; s < 8; ++s)
        seeds.push_back(1000 + s);

    const std::vector<ShotRun> seq = run_shots_many(
        logical, sopts, pristine, engine, seeds, /*jobs=*/1);
    const std::vector<ShotRun> par = run_shots_many(
        logical, sopts, pristine, engine, seeds, /*jobs=*/4);

    ASSERT_EQ(seq.size(), seeds.size());
    ASSERT_EQ(par.size(), seeds.size());
    for (size_t i = 0; i < seeds.size(); ++i) {
        EXPECT_TRUE(seq[i].prepared) << "seed " << seeds[i];
        EXPECT_EQ(seq[i].prepared, par[i].prepared);
        expect_identical_summary(seq[i].summary, par[i].summary);
    }

    // Different seeds produce genuinely different trajectories.
    bool varies = false;
    for (size_t i = 1; i < seeds.size(); ++i) {
        if (seq[i].summary.losses != seq[0].summary.losses)
            varies = true;
    }
    EXPECT_TRUE(varies);
}

TEST(ShotFanoutTest, SlotsMatchDirectRunShots)
{
    const Circuit logical = benchmarks::cnu(9);
    StrategyOptions sopts;
    sopts.kind = StrategyKind::MinorReroute;
    sopts.device_mid = 3.0;
    const GridTopology pristine(8, 8);

    ShotEngineOptions engine;
    engine.max_shots = 30;

    const std::vector<uint64_t> seeds{5, 6, 7};
    const std::vector<ShotRun> runs = run_shots_many(
        logical, sopts, pristine, engine, seeds, /*jobs=*/3);

    for (size_t i = 0; i < seeds.size(); ++i) {
        GridTopology topo = pristine;
        const auto strategy = make_strategy(sopts);
        ASSERT_TRUE(strategy->prepare(logical, topo));
        ShotEngineOptions direct = engine;
        direct.seed = seeds[i];
        const ShotSummary expected =
            run_shots(*strategy, topo, direct);
        ASSERT_TRUE(runs[i].prepared);
        expect_identical_summary(runs[i].summary, expected);
    }
}

TEST(ShotFanoutTest, RefusedConfigurationReportsUnprepared)
{
    const Circuit logical = benchmarks::cnu(9);
    StrategyOptions sopts;
    sopts.kind = StrategyKind::CompileSmall; // Refuses device MID 2.
    sopts.device_mid = 2.0;
    const GridTopology pristine(8, 8);

    const std::vector<ShotRun> runs = run_shots_many(
        logical, sopts, pristine, ShotEngineOptions{}, {1, 2},
        /*jobs=*/2);
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_FALSE(runs[0].prepared);
    EXPECT_FALSE(runs[1].prepared);
}

} // namespace
} // namespace naq
