/**
 * @file
 * Randomized invariant checks ("fuzz") for the loss strategies: under
 * arbitrary loss/reload sequences, every strategy must keep its
 * internal bookkeeping consistent — referenced atoms live and
 * distinct, fix-up accounting sane, reload always recovering.
 */
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "loss/shot_engine.h"
#include "loss/strategies.h"

namespace naq {
namespace {

class StrategyFuzz
    : public ::testing::TestWithParam<std::tuple<StrategyKind, uint64_t>>
{
};

TEST_P(StrategyFuzz, InvariantsUnderRandomLossSequences)
{
    const auto [kind, seed] = GetParam();
    const Circuit logical = benchmarks::cuccaro(24);

    StrategyOptions opts;
    opts.kind = kind;
    opts.device_mid = 4.0;
    GridTopology topo(10, 10);
    auto strategy = make_strategy(opts);
    ASSERT_TRUE(strategy->prepare(logical, topo));

    Rng rng(seed);
    size_t reloads = 0;
    for (int step = 0; step < 300; ++step) {
        // Mixed workload: mostly losses, occasional spontaneous
        // reload (e.g. operator intervention).
        if (rng.bernoulli(0.03)) {
            topo.activate_all();
            strategy->on_reload(topo);
            ++reloads;
        } else {
            const std::vector<Site> active = topo.active_sites();
            if (active.empty())
                break;
            const Site victim =
                active[size_t(rng.uniform_int(active.size()))];
            const bool in_use = strategy->site_in_use(victim);
            topo.deactivate(victim);
            if (in_use &&
                strategy->on_loss(victim, topo).needs_reload) {
                topo.activate_all();
                strategy->on_reload(topo);
                ++reloads;
            }
        }

        // Invariant 1: the program's qubits are backed by distinct,
        // active atoms (count the in-use sites).
        size_t in_use = 0;
        for (Site s = 0; s < topo.num_sites(); ++s) {
            if (strategy->site_in_use(s)) {
                EXPECT_TRUE(topo.is_active(s))
                    << "used site " << s << " has no atom (step "
                    << step << ")";
                ++in_use;
            }
        }
        EXPECT_GE(in_use, logical.num_qubits())
            << strategy_name(kind) << " step " << step;

        // Invariant 2: fix-up accounting is consistent with stats.
        const CompiledStats stats = strategy->current_stats();
        EXPECT_EQ(stats.n2, stats_of(strategy->compiled()).n2 +
                                3 * strategy->fixup_swaps());

        // Invariant 3: stats describe a live program.
        EXPECT_EQ(stats.qubits_used, logical.num_qubits());
        EXPECT_GT(stats.total(), 0u);
    }
    // The run must have exercised at least one adaptation or reload.
    EXPECT_GT(reloads + strategy->compile_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyFuzz,
    ::testing::Combine(::testing::ValuesIn(all_strategies()),
                       ::testing::Values(1u, 2u, 3u)));

TEST(StrategyFuzzEdge, ShotEngineSurvivesExtremeBackgroundLoss)
{
    const Circuit logical = benchmarks::cuccaro(12);
    StrategyOptions opts;
    opts.kind = StrategyKind::MinorReroute;
    opts.device_mid = 3.0;
    GridTopology topo(10, 10);
    auto strategy = make_strategy(opts);
    ASSERT_TRUE(strategy->prepare(logical, topo));

    ShotEngineOptions engine;
    engine.max_shots = 50;
    engine.loss.p_background = 0.2; // Atoms evaporate constantly.
    engine.seed = 11;
    const ShotSummary sum = run_shots(*strategy, topo, engine);
    EXPECT_EQ(sum.shots_attempted, 50u);
    EXPECT_GT(sum.losses, 100u);
    // The engine must keep the device usable throughout.
    EXPECT_GE(topo.num_active(), logical.num_qubits());
}

} // namespace
} // namespace naq
