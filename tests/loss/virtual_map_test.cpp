#include "loss/virtual_map.h"

#include <gtest/gtest.h>

namespace naq {
namespace {

class VirtualMapTest : public ::testing::Test
{
  protected:
    GridTopology topo_{5, 5};
};

TEST_F(VirtualMapTest, IdentityInitially)
{
    VirtualMap vm(topo_);
    for (Site s = 0; s < topo_.num_sites(); ++s)
        EXPECT_EQ(vm.position(s), s);
}

TEST_F(VirtualMapTest, UnreferencedLossIsNoOp)
{
    VirtualMap vm(topo_);
    vm.set_referenced({topo_.site(2, 2)});
    const Site spare = topo_.site(0, 0);
    topo_.deactivate(spare);
    EXPECT_TRUE(vm.shift_for_loss(spare));
    EXPECT_EQ(vm.shift_count(), 0u);
    EXPECT_EQ(vm.position(topo_.site(2, 2)), topo_.site(2, 2));
}

TEST_F(VirtualMapTest, PhysInUseTracksReferencedLabels)
{
    VirtualMap vm(topo_);
    vm.set_referenced({topo_.site(1, 1)});
    EXPECT_TRUE(vm.phys_in_use(topo_.site(1, 1)));
    EXPECT_FALSE(vm.phys_in_use(topo_.site(0, 0)));
}

TEST_F(VirtualMapTest, LossShiftsLabelToNeighbourSpare)
{
    VirtualMap vm(topo_);
    const Site used = topo_.site(2, 2);
    vm.set_referenced({used});
    topo_.deactivate(used);
    ASSERT_TRUE(vm.shift_for_loss(used));
    // The label now lives on an active site one step away.
    const Site now = vm.position(used);
    EXPECT_NE(now, used);
    EXPECT_TRUE(topo_.is_active(now));
    EXPECT_DOUBLE_EQ(topo_.distance(now, used), 1.0);
    EXPECT_TRUE(vm.phys_in_use(now));
    EXPECT_EQ(vm.shift_count(), 1u);
}

TEST_F(VirtualMapTest, ChainShiftPreservesAllLabels)
{
    // A full row of referenced labels except the last column: losing
    // the first column pushes the whole row right by one.
    VirtualMap vm(topo_);
    std::vector<Site> refs;
    for (int c = 0; c < 4; ++c)
        refs.push_back(topo_.site(2, c));
    vm.set_referenced(refs);

    const Site lost = topo_.site(2, 0);
    topo_.deactivate(lost);
    ASSERT_TRUE(vm.shift_for_loss(lost));
    // Every referenced label keeps a distinct active home.
    std::vector<uint8_t> seen(topo_.num_sites(), 0);
    for (Site label : refs) {
        const Site pos = vm.position(label);
        ASSERT_NE(pos, VirtualMap::kLost);
        EXPECT_TRUE(topo_.is_active(pos));
        EXPECT_FALSE(seen[pos]);
        seen[pos] = 1;
    }
}

TEST_F(VirtualMapTest, ChoosesDirectionWithMostSpares)
{
    VirtualMap vm(topo_);
    // Reference the left part of row 2: spares are to the east.
    std::vector<Site> refs;
    for (int c = 0; c < 2; ++c)
        refs.push_back(topo_.site(2, c));
    // Block north, south, west by referencing those full columns/rows.
    for (int c = 0; c < 5; ++c) {
        refs.push_back(topo_.site(0, c));
        refs.push_back(topo_.site(1, c));
        refs.push_back(topo_.site(3, c));
        refs.push_back(topo_.site(4, c));
    }
    vm.set_referenced(refs);

    const Site lost = topo_.site(2, 0);
    topo_.deactivate(lost);
    ASSERT_TRUE(vm.shift_for_loss(lost));
    // The displaced label must have moved east along row 2.
    const Site pos = vm.position(lost);
    EXPECT_EQ(topo_.coord(pos).row, 2);
    EXPECT_GT(topo_.coord(pos).col, 0);
}

TEST_F(VirtualMapTest, FailsWhenNoSpareAnywhere)
{
    GridTopology tiny(2, 2);
    VirtualMap vm(tiny);
    vm.set_referenced({0, 1, 2, 3}); // Everything referenced.
    tiny.deactivate(0);
    EXPECT_FALSE(vm.shift_for_loss(0));
}

TEST_F(VirtualMapTest, ShiftSkipsEarlierHoles)
{
    VirtualMap vm(topo_);
    const Site used = topo_.site(2, 1);
    vm.set_referenced({used});
    // Pre-existing hole between the loss and the spares to the east.
    topo_.deactivate(topo_.site(2, 2));
    topo_.deactivate(used);
    ASSERT_TRUE(vm.shift_for_loss(used));
    const Site pos = vm.position(used);
    EXPECT_TRUE(topo_.is_active(pos));
    EXPECT_NE(pos, topo_.site(2, 2));
}

TEST_F(VirtualMapTest, ResetRestoresIdentity)
{
    VirtualMap vm(topo_);
    const Site used = topo_.site(2, 2);
    vm.set_referenced({used});
    topo_.deactivate(used);
    ASSERT_TRUE(vm.shift_for_loss(used));
    topo_.activate_all();
    vm.reset();
    EXPECT_EQ(vm.position(used), used);
    EXPECT_EQ(vm.shift_count(), 0u);
}

TEST_F(VirtualMapTest, SequentialLossesKeepConsistency)
{
    VirtualMap vm(topo_);
    std::vector<Site> refs;
    for (int c = 0; c < 3; ++c)
        refs.push_back(topo_.site(2, c));
    vm.set_referenced(refs);

    // Lose whichever atom currently backs label (2,1), twice.
    for (int round = 0; round < 2; ++round) {
        const Site victim = vm.position(topo_.site(2, 1));
        topo_.deactivate(victim);
        ASSERT_TRUE(vm.shift_for_loss(victim)) << "round " << round;
    }
    std::vector<uint8_t> seen(topo_.num_sites(), 0);
    for (Site label : refs) {
        const Site pos = vm.position(label);
        ASSERT_NE(pos, VirtualMap::kLost);
        EXPECT_TRUE(topo_.is_active(pos));
        EXPECT_FALSE(seen[pos]);
        seen[pos] = 1;
    }
}

} // namespace
} // namespace naq
