#include "loss/shot_engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "benchmarks/benchmarks.h"

namespace naq {
namespace {

StrategyOptions
strat_opts(StrategyKind kind, double mid = 3.0)
{
    StrategyOptions o;
    o.kind = kind;
    o.device_mid = mid;
    return o;
}

TEST(ShotEngineTest, LosslessRunAllShotsSucceed)
{
    GridTopology topo(10, 10);
    auto strategy = make_strategy(strat_opts(StrategyKind::VirtualRemap));
    ASSERT_TRUE(strategy->prepare(benchmarks::cuccaro(30), topo));

    ShotEngineOptions opts;
    opts.max_shots = 50;
    opts.loss.p_background = 0.0;
    opts.loss.p_measurement = 0.0;
    const ShotSummary sum = run_shots(*strategy, topo, opts);
    EXPECT_EQ(sum.shots_attempted, 50u);
    EXPECT_EQ(sum.shots_successful, 50u);
    EXPECT_EQ(sum.reloads, 0u);
    EXPECT_EQ(sum.losses, 0u);
    // Time: 1 compile + 50 * (run + fluorescence).
    EXPECT_NEAR(sum.time_fluorescence_s, 50 * opts.time.fluorescence_s,
                1e-12);
    EXPECT_GT(sum.time_run_s, 0.0);
}

TEST(ShotEngineTest, CertainLossMakesShotsFail)
{
    GridTopology topo(10, 10);
    auto strategy = make_strategy(strat_opts(StrategyKind::AlwaysReload));
    ASSERT_TRUE(strategy->prepare(benchmarks::cuccaro(30), topo));

    ShotEngineOptions opts;
    opts.max_shots = 10;
    opts.loss.p_background = 0.0;
    opts.loss.p_measurement = 1.0; // Every program atom lost each shot.
    const ShotSummary sum = run_shots(*strategy, topo, opts);
    EXPECT_EQ(sum.shots_successful, 0u);
    EXPECT_EQ(sum.reloads, 10u);
    EXPECT_GT(sum.interfering_losses, 0u);
    EXPECT_NEAR(sum.time_reload_s, 10 * opts.time.reload_s, 1e-9);
}

TEST(ShotEngineTest, DeterministicBySeed)
{
    const Circuit logical = benchmarks::cnu(29);
    auto run = [&](uint64_t seed) {
        GridTopology topo(10, 10);
        auto strategy =
            make_strategy(strat_opts(StrategyKind::CompileSmallReroute,
                                     4.0));
        EXPECT_TRUE(strategy->prepare(logical, topo));
        ShotEngineOptions opts;
        opts.max_shots = 100;
        opts.seed = seed;
        return run_shots(*strategy, topo, opts);
    };
    const ShotSummary a = run(42), b = run(42), c = run(43);
    EXPECT_EQ(a.shots_successful, b.shots_successful);
    EXPECT_EQ(a.reloads, b.reloads);
    EXPECT_EQ(a.losses, b.losses);
    EXPECT_NE(a.losses, c.losses);
}

TEST(ShotEngineTest, StopAtFirstReload)
{
    GridTopology topo(10, 10);
    auto strategy = make_strategy(strat_opts(StrategyKind::AlwaysReload));
    ASSERT_TRUE(strategy->prepare(benchmarks::cuccaro(30), topo));

    ShotEngineOptions opts;
    opts.max_shots = 0; // Unlimited.
    opts.stop_at_first_reload = true;
    opts.seed = 9;
    const ShotSummary sum = run_shots(*strategy, topo, opts);
    EXPECT_EQ(sum.reloads, 1u);
    EXPECT_EQ(sum.successful_before_first_reload, sum.shots_successful);
}

TEST(ShotEngineTest, TargetSuccessfulStops)
{
    GridTopology topo(10, 10);
    auto strategy =
        make_strategy(strat_opts(StrategyKind::CompileSmallReroute, 4.0));
    ASSERT_TRUE(strategy->prepare(benchmarks::cuccaro(30), topo));

    ShotEngineOptions opts;
    opts.max_shots = 0;
    opts.target_successful = 20;
    opts.seed = 17;
    const ShotSummary sum = run_shots(*strategy, topo, opts);
    EXPECT_EQ(sum.shots_successful, 20u);
    EXPECT_GE(sum.shots_attempted, 20u);
}

TEST(ShotEngineTest, TimelineRecordsEventsInOrder)
{
    GridTopology topo(10, 10);
    auto strategy =
        make_strategy(strat_opts(StrategyKind::CompileSmallReroute, 4.0));
    ASSERT_TRUE(strategy->prepare(benchmarks::cuccaro(30), topo));

    ShotEngineOptions opts;
    opts.max_shots = 0;
    opts.target_successful = 20;
    opts.record_timeline = true;
    opts.seed = 23;
    const ShotSummary sum = run_shots(*strategy, topo, opts);
    ASSERT_FALSE(sum.timeline.empty());
    EXPECT_EQ(sum.timeline.front().kind, TimelineEvent::Kind::Compile);
    double clock = 0.0;
    for (const TimelineEvent &ev : sum.timeline) {
        EXPECT_NEAR(ev.start_s, clock, 1e-9);
        clock += ev.duration_s;
    }
    EXPECT_NEAR(clock, sum.total_s(), 1e-9);
}

TEST(ShotEngineTest, ImprovementFactorReducesLosses)
{
    const Circuit logical = benchmarks::cuccaro(30);
    auto losses_at = [&](double factor) {
        GridTopology topo(10, 10);
        auto strategy =
            make_strategy(strat_opts(StrategyKind::VirtualRemap));
        EXPECT_TRUE(strategy->prepare(logical, topo));
        ShotEngineOptions opts;
        opts.max_shots = 200;
        opts.loss.improvement_factor = factor;
        opts.seed = 31;
        return run_shots(*strategy, topo, opts).losses;
    };
    EXPECT_GT(losses_at(1.0), losses_at(10.0));
}

TEST(ShotEngineTest, ToleranceProbeOrdering)
{
    // Recompile sustains at least as many losses as virtual remapping
    // (paper Fig. 10 ordering).
    const Circuit logical = benchmarks::cuccaro(30);
    auto tolerance = [&](StrategyKind kind) {
        GridTopology topo(10, 10);
        StrategyOptions so = strat_opts(kind, 3.0);
        so.enforce_swap_budget = false;
        auto strategy = make_strategy(so);
        EXPECT_TRUE(strategy->prepare(logical, topo));
        Rng rng(7);
        return max_loss_tolerance(*strategy, topo, rng);
    };
    const size_t remap = tolerance(StrategyKind::VirtualRemap);
    const size_t recompile = tolerance(StrategyKind::FullRecompile);
    EXPECT_GE(recompile, remap);
    EXPECT_GT(recompile, 20u); // 30q program on 100 atoms: lots of slack.
}

TEST(ShotEngineTest, OverheadBeatsAlwaysReloadForRemap)
{
    // Paper Fig. 12: adaptive strategies cost less wall clock than
    // reloading on every interfering loss.
    const Circuit logical = benchmarks::cuccaro(30);
    auto overhead = [&](StrategyKind kind) {
        GridTopology topo(10, 10);
        StrategyOptions so = strat_opts(kind, 4.0);
        auto strategy = make_strategy(so);
        EXPECT_TRUE(strategy->prepare(logical, topo));
        ShotEngineOptions opts;
        opts.max_shots = 300;
        opts.seed = 77;
        return run_shots(*strategy, topo, opts).overhead_s();
    };
    EXPECT_LT(overhead(StrategyKind::CompileSmallReroute),
              overhead(StrategyKind::AlwaysReload));
}

TEST(ShotEngineTest, TimelineKindNamesAreExhaustiveAndUnique)
{
    // Every Kind — including the simulator-only Move/Measure — must
    // render as a unique, non-placeholder name; a new enumerator
    // without a name would silently print "?" in fig14's trace.
    const TimelineEvent::Kind kinds[] = {
        TimelineEvent::Kind::Compile,      TimelineEvent::Kind::Run,
        TimelineEvent::Kind::Fluorescence, TimelineEvent::Kind::Fixup,
        TimelineEvent::Kind::Reload,       TimelineEvent::Kind::Recompile,
        TimelineEvent::Kind::CacheHit,     TimelineEvent::Kind::Move,
        TimelineEvent::Kind::Measure,
    };
    std::vector<std::string> names;
    for (const TimelineEvent::Kind kind : kinds) {
        const std::string name = timeline_kind_name(kind);
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?");
        EXPECT_EQ(std::count(names.begin(), names.end(), name), 0)
            << "duplicate timeline kind name: " << name;
        names.push_back(name);
    }
}

} // namespace
} // namespace naq
