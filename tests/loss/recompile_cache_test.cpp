/**
 * @file
 * The recompiling strategy's mask-keyed compile cache: repeated
 * degraded topologies must be served from cache with results
 * identical to a fresh recompile, and the shot engine must surface
 * the hits (counters + timeline) without changing shot outcomes.
 */
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "core/compiler.h"
#include "loss/shot_engine.h"
#include "loss/strategies.h"

namespace naq {
namespace {

StrategyOptions
recompile_options(double mid = 3.0)
{
    StrategyOptions opts;
    opts.kind = StrategyKind::FullRecompile;
    opts.device_mid = mid;
    return opts;
}

Site
first_used_site(const LossStrategy &strategy, const GridTopology &topo)
{
    for (Site s = 0; s < topo.num_sites(); ++s) {
        if (topo.is_active(s) && strategy.site_in_use(s))
            return s;
    }
    ADD_FAILURE() << "no used site";
    return 0;
}

void
expect_identical(const CompiledCircuit &a, const CompiledCircuit &b)
{
    ASSERT_EQ(a.schedule.size(), b.schedule.size());
    for (size_t g = 0; g < a.schedule.size(); ++g) {
        EXPECT_EQ(a.schedule[g].gate, b.schedule[g].gate);
        EXPECT_EQ(a.schedule[g].timestep, b.schedule[g].timestep);
    }
    EXPECT_EQ(a.initial_mapping, b.initial_mapping);
    EXPECT_EQ(a.final_mapping, b.final_mapping);
    EXPECT_EQ(a.num_timesteps, b.num_timesteps);
}

TEST(RecompileCacheTest, RepeatedMaskHitsCacheWithIdenticalResult)
{
    GridTopology topo(10, 10);
    const Circuit logical = benchmarks::cnu(29);
    auto strategy = make_strategy(recompile_options());
    ASSERT_TRUE(strategy->prepare(logical, topo));
    EXPECT_EQ(strategy->cache_hits(), 0u);

    // First loss: fresh compile, cached under the degraded mask.
    const Site lost = first_used_site(*strategy, topo);
    topo.deactivate(lost);
    const AdaptResult first = strategy->on_loss(lost, topo);
    ASSERT_TRUE(first.recompiled);
    EXPECT_FALSE(first.from_cache);
    EXPECT_EQ(strategy->compile_count(), 2u);
    const CompiledCircuit after_compile = strategy->compiled();

    // Reload, then lose the *same* atom again: same mask, cache hit,
    // no compiler invocation — and the adopted schedule matches the
    // fresh recompile bit for bit.
    topo.activate_all();
    strategy->on_reload(topo);
    topo.deactivate(lost);
    const AdaptResult second = strategy->on_loss(lost, topo);
    ASSERT_TRUE(second.recompiled);
    EXPECT_TRUE(second.from_cache);
    EXPECT_EQ(strategy->cache_hits(), 1u);
    EXPECT_EQ(strategy->compile_count(), 2u); // Unchanged.
    expect_identical(strategy->compiled(), after_compile);
}

TEST(RecompileCacheTest, CachedResultMatchesFreshRecompile)
{
    // Reference: an independent compiler run against the same mask.
    GridTopology topo(10, 10);
    const Circuit logical = benchmarks::cuccaro(30);
    auto strategy = make_strategy(recompile_options());
    ASSERT_TRUE(strategy->prepare(logical, topo));

    const Site lost = first_used_site(*strategy, topo);
    topo.deactivate(lost);
    ASSERT_TRUE(strategy->on_loss(lost, topo).recompiled);

    topo.activate_all();
    strategy->on_reload(topo);
    topo.deactivate(lost);
    ASSERT_TRUE(strategy->on_loss(lost, topo).from_cache);

    CompilerOptions copts;
    copts.max_interaction_distance = 3.0;
    const CompileResult fresh = compile(logical, topo, copts);
    ASSERT_TRUE(fresh.success);
    expect_identical(strategy->compiled(), fresh.compiled);
}

TEST(RecompileCacheTest, DifferentMasksMissTheCache)
{
    GridTopology topo(10, 10);
    auto strategy = make_strategy(recompile_options());
    ASSERT_TRUE(strategy->prepare(benchmarks::cnu(29), topo));

    const Site first = first_used_site(*strategy, topo);
    topo.deactivate(first);
    ASSERT_TRUE(strategy->on_loss(first, topo).recompiled);
    const size_t compiles_after_first = strategy->compile_count();

    // A second, different loss degrades to a new mask: miss.
    const Site second = first_used_site(*strategy, topo);
    topo.deactivate(second);
    const AdaptResult r = strategy->on_loss(second, topo);
    if (r.recompiled)
        EXPECT_FALSE(r.from_cache);
    EXPECT_EQ(strategy->compile_count(), compiles_after_first + 1);
    EXPECT_EQ(strategy->cache_hits(), 0u);
}

TEST(RecompileCacheTest, HotMaskSurvivesSweepPastCacheCapacity)
{
    // The LRU property at strategy level: one hot degraded mask keeps
    // hitting while a long sweep floods the cache with cold masks
    // well past its capacity. The old wholesale-clear policy dropped
    // the hot entry at every threshold crossing; a tiny capacity
    // stands in for the historical 1024 so the flood stays cheap.
    StrategyOptions opts = recompile_options();
    opts.recompile_cache_capacity = 3;
    GridTopology topo(8, 8);
    const Circuit logical = benchmarks::cnu(9);
    auto strategy = make_strategy(opts);
    ASSERT_TRUE(strategy->prepare(logical, topo));

    // Every used site is a distinct single-loss mask.
    std::vector<Site> used;
    for (Site s = 0; s < topo.num_sites(); ++s) {
        if (strategy->site_in_use(s))
            used.push_back(s);
    }
    ASSERT_GE(used.size(), 7u); // Hot site + >2x capacity cold ones.

    const Site hot = used[0];
    const auto lose = [&](Site victim) {
        topo.deactivate(victim);
        const AdaptResult r = strategy->on_loss(victim, topo);
        EXPECT_FALSE(r.needs_reload);
        topo.activate_all();
        strategy->on_reload(topo);
        return r;
    };

    EXPECT_FALSE(lose(hot).from_cache); // Seeds the hot entry.
    size_t expected_hits = 0;
    for (size_t cold = 1; cold < 7; ++cold) {
        // Cold insertions exceed capacity 3 twice over...
        EXPECT_FALSE(lose(used[cold]).from_cache);
        // ...yet the interleaved hot mask always hits.
        EXPECT_TRUE(lose(hot).from_cache)
            << "hot mask evicted after cold mask " << cold;
        EXPECT_EQ(strategy->cache_hits(), ++expected_hits);
    }
}

TEST(RecompileCacheTest, ShotSweepSurfacesHitsWithUnchangedOutcomes)
{
    // Identical seeded sweeps with and without the cache cannot be
    // compared directly (the cache is always on), so compare against
    // the invariant that matters: outcome counters depend only on
    // the compile results, which the cache reproduces exactly. Run a
    // lossy sweep long enough to repeat masks and check hits appear
    // and totals stay consistent.
    GridTopology topo(10, 10);
    auto strategy = make_strategy(recompile_options());
    ASSERT_TRUE(strategy->prepare(benchmarks::cnu(29), topo));

    ShotEngineOptions engine;
    engine.max_shots = 400;
    engine.seed = 20211111;
    engine.record_timeline = true;
    engine.loss.p_measurement = 0.02; // Lossy enough to repeat masks.
    const ShotSummary sum = run_shots(*strategy, topo, engine);

    EXPECT_GT(sum.recompiles, 0u);
    EXPECT_GT(sum.recompile_cache_hits, 0u);
    EXPECT_EQ(sum.recompile_cache_hits, strategy->cache_hits());
    EXPECT_LE(sum.recompile_cache_hits,
              sum.recompiles + sum.reloads); // Cached failures too.
    // compile_count only grows on true compiler runs.
    EXPECT_LT(strategy->compile_count() - 1 + sum.recompile_cache_hits,
              sum.shots_attempted + sum.recompiles + sum.reloads + 1);

    // The timeline shows cache hits as their own (cheap) events.
    size_t timeline_hits = 0;
    double hit_time = 0.0;
    for (const TimelineEvent &ev : sum.timeline) {
        if (ev.kind == TimelineEvent::Kind::CacheHit) {
            ++timeline_hits;
            hit_time += ev.duration_s;
        }
    }
    EXPECT_GT(timeline_hits, 0u);
    EXPECT_LT(hit_time, engine.time.recompile_s); // Far cheaper.
}

TEST(RecompileCacheTest, NonRecompilingStrategiesReportZeroHits)
{
    GridTopology topo(10, 10);
    StrategyOptions opts;
    opts.kind = StrategyKind::VirtualRemap;
    opts.device_mid = 3.0;
    auto strategy = make_strategy(opts);
    ASSERT_TRUE(strategy->prepare(benchmarks::cuccaro(30), topo));
    EXPECT_EQ(strategy->cache_hits(), 0u);
}

} // namespace
} // namespace naq
