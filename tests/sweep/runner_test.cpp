/**
 * @file
 * SweepRunner execution semantics: parallel runs must produce results
 * bit-identical to sequential ones (and to the standard experiment's
 * real compiles/shot loops), evaluator exceptions must mark points
 * failed without killing the sweep, and the CSV/JSON sinks must
 * serialize deterministically.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sweep/runner.h"
#include "sweep/sink.h"
#include "sweep/standard.h"

namespace naq::sweep {
namespace {

void
expect_identical_runs(const SweepRun &a, const SweepRun &b)
{
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].ok, b.results[i].ok) << "point " << i;
        EXPECT_EQ(a.results[i].note, b.results[i].note)
            << "point " << i;
        EXPECT_TRUE(a.results[i].metrics == b.results[i].metrics)
            << "point " << i;
        EXPECT_EQ(a.points[i].seed, b.points[i].seed) << "point " << i;
    }
}

/** A real workload: compiles + shot loops via the standard evaluator. */
StandardSpec
shot_spec(size_t jobs)
{
    StandardSpec spec;
    spec.shots = 25;
    spec.sweep.name = "runner-test";
    spec.sweep.master_seed = 99;
    spec.sweep.jobs = jobs;
    spec.sweep.axis("bench", strs({"BV", "CNU"}))
        .axis("size", ints({10, 14}))
        .axis("mid", nums({3.0}))
        .axis("strategy", strs({"reroute"}))
        .axis("trial", indices(3));
    return spec;
}

TEST(SweepRunnerTest, ParallelMatchesSequentialExactly)
{
    const StandardSpec seq = shot_spec(1);
    const StandardSpec par = shot_spec(4);

    const SweepRun a =
        SweepRunner(seq.sweep).run(standard_experiment(seq));
    const SweepRun b =
        SweepRunner(par.sweep).run(standard_experiment(par));
    ASSERT_EQ(a.results.size(), 2u * 2u * 1u * 1u * 3u);
    expect_identical_runs(a, b);

    // Stochastic metrics actually vary across trials (the shot loop
    // really ran with distinct per-point seeds).
    bool varies = false;
    for (size_t t = 1; t < 3; ++t) {
        if (!(a.results[t].metrics == a.results[0].metrics))
            varies = true;
    }
    EXPECT_TRUE(varies);
}

TEST(SweepRunnerTest, SinksSerializeIdenticallyAcrossWorkerCounts)
{
    const StandardSpec seq = shot_spec(1);
    const StandardSpec par = shot_spec(3);
    const SweepRun a =
        SweepRunner(seq.sweep).run(standard_experiment(seq));
    const SweepRun b =
        SweepRunner(par.sweep).run(standard_experiment(par));

    EXPECT_EQ(to_csv(a), to_csv(b));
    // wall_ms differs between runs; exclude it for byte equality.
    EXPECT_EQ(to_json(a, false), to_json(b, false));

    // Sanity on the shapes.
    const std::string csv = to_csv(a);
    EXPECT_NE(csv.find("bench,size,mid,strategy,trial,seed,ok"),
              std::string::npos);
    const std::string json = to_json(a, false);
    EXPECT_NE(json.find("\"schema\": \"naq-sweep-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ok_shots\""), std::string::npos);
}

TEST(SweepRunnerTest, JsonStaysValidForHostileNotesAndNonFiniteMetrics)
{
    SweepSpec spec;
    spec.name = "hostile \"name\"";
    spec.jobs = 1;
    spec.axis("i", indices(2));
    const SweepRun run = SweepRunner(spec).run(
        [](const SweepPoint &p, PointResult &res) {
            if (p.as_int("i") == 0)
                throw std::runtime_error("ctrl\rchars\tand \"quotes\"");
            res.metrics.set("bad", std::nan(""));
            res.metrics.set("good", 1.5);
        });
    const std::string json = to_json(run, false);
    // Control characters are \u-escaped, quotes backslash-escaped,
    // and non-finite metrics become null — never bare nan tokens.
    EXPECT_NE(json.find("ctrl\\u000dchars\\tand \\\"quotes\\\""),
              std::string::npos);
    EXPECT_EQ(json.find('\r'), std::string::npos);
    EXPECT_NE(json.find("\"bad\": null"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(SweepRunnerTest, SkipMarksPointIntentionallyUnevaluated)
{
    SweepSpec spec;
    spec.axis("i", indices(2));
    const SweepRun run = SweepRunner(spec).run(
        [](const SweepPoint &p, PointResult &res) {
            if (p.as_int("i") == 0)
                res.skip("hole in the grid");
            else
                res.metrics.set("v", 1.0);
        });
    EXPECT_FALSE(run.results[0].ok);
    EXPECT_TRUE(run.results[0].skipped);
    EXPECT_EQ(run.results[0].note, "hole in the grid");
    EXPECT_FALSE(run.results[1].skipped);
}

TEST(SweepRunnerTest, EvaluatorExceptionMarksPointFailed)
{
    SweepSpec spec;
    spec.name = "throwing";
    spec.jobs = 2;
    spec.axis("i", indices(6));
    const SweepRun run = SweepRunner(spec).run(
        [](const SweepPoint &p, PointResult &res) {
            if (p.as_int("i") == 3)
                throw std::runtime_error("boom");
            res.metrics.set("v", double(p.as_int("i")) * 2.0);
        });
    ASSERT_EQ(run.results.size(), 6u);
    for (size_t i = 0; i < 6; ++i) {
        if (i == 3) {
            EXPECT_FALSE(run.results[i].ok);
            EXPECT_EQ(run.results[i].note, "boom");
        } else {
            EXPECT_TRUE(run.results[i].ok);
            EXPECT_EQ(run.results[i].metrics.get("v"), double(i) * 2);
        }
    }
}

TEST(SweepRunnerTest, ResultGridAddressesPointsByCoordinates)
{
    SweepSpec spec;
    spec.axis("a", ints({1, 2})).axis("b", strs({"x", "y", "z"}));
    const SweepRun run = SweepRunner(spec).run(
        [](const SweepPoint &p, PointResult &res) {
            res.metrics.set("tag", double(p.as_int("a") * 100 +
                                          long(p.coord[1])));
        });
    const ResultGrid grid(run);
    EXPECT_EQ(grid.metric({{"a", 2LL}, {"b", "z"}}, "tag"), 202.0);
    EXPECT_EQ(grid.metric({{"b", "x"}, {"a", 1LL}}, "tag"), 100.0);
    EXPECT_THROW(grid.at({{"a", 1LL}}), std::out_of_range);
    EXPECT_THROW(grid.at({{"a", 3LL}, {"b", "x"}}), std::out_of_range);
}

TEST(SweepRunnerTest, RunOwnsItsSpec)
{
    // The spec dies before the results are read; the run's copy keeps
    // point lookups valid (regression: fig06 builds runs in helpers).
    SweepRun run;
    {
        SweepSpec spec;
        spec.axis("i", indices(4));
        run = SweepRunner(spec).run(
            [](const SweepPoint &p, PointResult &res) {
                res.metrics.set("v", double(p.as_int("i")));
            });
    }
    const ResultGrid grid(run);
    EXPECT_EQ(grid.metric({{"i", 3LL}}, "v"), 3.0);
    EXPECT_EQ(run.points[2].as_int("i"), 2);
}

TEST(StandardSpecTest, ParsesTextSpec)
{
    const StandardSpec spec = parse_standard_spec(
        "# demo sweep\n"
        "name  = demo\n"
        "seed  = 7\n"
        "shots = 10\n"
        "bench = bv, cnu\n"
        "size  = 10, 20\n"
        "mid   = 2, 3.5\n"
        "trial = 2\n");
    EXPECT_EQ(spec.sweep.name, "demo");
    EXPECT_EQ(spec.sweep.master_seed, 7u);
    EXPECT_EQ(spec.shots, 10u);
    EXPECT_EQ(spec.sweep.num_points(), 2u * 2u * 2u * 2u);
    EXPECT_EQ(spec.sweep.axes[0].name, "bench");
    // Names are canonicalized at parse time.
    EXPECT_EQ(std::get<std::string>(spec.sweep.axes[0].values[1]),
              "CNU");
    EXPECT_EQ(std::get<double>(spec.sweep.axes[2].values[1]), 3.5);
}

TEST(StandardSpecTest, RejectsUnknownKeysAndValues)
{
    EXPECT_THROW(parse_standard_spec("bench = bv\nwat = 1\n"),
                 std::runtime_error);
    EXPECT_THROW(parse_standard_spec("bench = nosuchbench\n"),
                 std::runtime_error);
    EXPECT_THROW(parse_standard_spec("bench = bv\nsize = ten\n"),
                 std::runtime_error);
    EXPECT_THROW(parse_standard_spec("size = 10\n"), // No bench axis.
                 std::runtime_error);
    EXPECT_THROW(parse_standard_spec("bench = bv\nbench = cnu\n"),
                 std::runtime_error);
}

TEST(StandardSpecTest, DefaultsFillMissingAxes)
{
    const StandardSpec spec = parse_standard_spec("bench = qaoa\n");
    EXPECT_NE(spec.sweep.axis_index("size"), SIZE_MAX);
    EXPECT_NE(spec.sweep.axis_index("mid"), SIZE_MAX);
    EXPECT_EQ(spec.sweep.num_points(), 1u);
}

} // namespace
} // namespace naq::sweep
