/**
 * @file
 * Crash-safe sweeps: journal record round-trips (bit-exact metrics,
 * hostile notes, torn-line rejection), spec signatures that reject
 * stale journals, resume producing byte-identical artifacts, shard
 * partitioning, and the status/attempts columns in the sinks.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sweep/journal.h"
#include "sweep/runner.h"
#include "sweep/sink.h"

namespace naq::sweep {
namespace {

SweepSpec
small_spec(size_t points = 6)
{
    SweepSpec spec;
    spec.name = "resume-test";
    spec.master_seed = 42;
    spec.jobs = 1;
    spec.axis("i", indices(points));
    return spec;
}

/** Deterministic synthetic evaluator with awkward values. */
void
eval_point(const SweepPoint &p, PointResult &res)
{
    const long long i = p.as_int("i");
    if (i == 2) {
        res.fail(CompileStatus::RoutingStuck, "wedged at \"i=2\"");
        return;
    }
    if (i == 3) {
        res.skip("hole");
        return;
    }
    res.attempts = i == 4 ? 3 : 1;
    res.metrics.set("v", 0.1 * double(i) + 1.0 / 3.0);
    res.metrics.set("big", 1e308 * (double(i) + 1.0));
}

TEST(JournalTest, RecordRoundTripsBitExactly)
{
    PointResult res;
    res.index = 17;
    res.fail(CompileStatus::DeadlineExceeded,
             "note with spaces, = signs\tand\nnewlines");
    res.attempts = 2;
    res.metrics.set("pi third", 1.0 / 3.0);
    res.metrics.set("k=v", -0.0);
    res.metrics.set("huge", 1.7976931348623157e308);

    PointResult back;
    ASSERT_TRUE(parse_journal_line(journal_line(res), back));
    EXPECT_EQ(back.index, res.index);
    EXPECT_EQ(back.ok, res.ok);
    EXPECT_EQ(back.skipped, res.skipped);
    EXPECT_EQ(back.status, res.status);
    EXPECT_EQ(back.attempts, res.attempts);
    EXPECT_EQ(back.note, res.note);
    EXPECT_TRUE(back.metrics == res.metrics); // Bitwise equality.
}

TEST(JournalTest, EmptyNoteAndNoMetricsRoundTrip)
{
    PointResult res;
    res.index = 0;
    PointResult back;
    ASSERT_TRUE(parse_journal_line(journal_line(res), back));
    EXPECT_TRUE(back.note.empty());
    EXPECT_TRUE(back.metrics.items().empty());
    EXPECT_TRUE(back.ok);
}

TEST(JournalTest, TornAndMalformedLinesAreRejected)
{
    PointResult res;
    res.index = 3;
    res.metrics.set("v", 1.25);
    const std::string line = journal_line(res);

    PointResult out;
    // A crash mid-write tears the end sentinel off.
    EXPECT_FALSE(
        parse_journal_line(line.substr(0, line.size() - 2), out));
    EXPECT_FALSE(parse_journal_line("", out));
    EXPECT_FALSE(parse_journal_line("q 1 1 0 ok 1 % .", out));
    EXPECT_FALSE(parse_journal_line("p 1 1 0 no-such 1 % .", out));
    EXPECT_FALSE(parse_journal_line("p x 1 0 ok 1 % .", out));
    EXPECT_TRUE(parse_journal_line(line, out));
}

TEST(JournalTest, SignatureDistinguishesGrids)
{
    const SweepSpec a = small_spec(6);
    SweepSpec b = small_spec(6);
    b.master_seed = 43;
    SweepSpec c = small_spec(7);
    SweepSpec d = small_spec(6);
    d.axes[0].name = "j";
    EXPECT_NE(spec_signature(a), spec_signature(b));
    EXPECT_NE(spec_signature(a), spec_signature(c));
    EXPECT_NE(spec_signature(a), spec_signature(d));
    EXPECT_EQ(spec_signature(a), spec_signature(small_spec(6)));

    // The int 3 and the double 3 print identically but are distinct
    // grid values; the signature must tell them apart.
    SweepSpec ints_axis;
    ints_axis.axis("x", ints({3}));
    SweepSpec nums_axis;
    nums_axis.axis("x", nums({3.0}));
    EXPECT_NE(spec_signature(ints_axis), spec_signature(nums_axis));
}

TEST(JournalTest, WriterProducesLoadableJournal)
{
    const SweepSpec spec = small_spec();
    const std::string path =
        ::testing::TempDir() + "naq_journal_roundtrip";
    const SweepRun run = SweepRunner(spec).run(eval_point);
    {
        JournalWriter writer(path, spec, /*fresh=*/true);
        for (const PointResult &res : run.results)
            writer.record(res);
        EXPECT_FALSE(writer.failed());
    }
    JournalPoints loaded;
    std::string error;
    ASSERT_TRUE(load_journal(path, spec, loaded, error)) << error;
    ASSERT_EQ(loaded.size(), run.results.size());
    for (const PointResult &res : run.results) {
        const PointResult &back = loaded.at(res.index);
        EXPECT_EQ(back.ok, res.ok) << res.index;
        EXPECT_EQ(back.status, res.status) << res.index;
        EXPECT_EQ(back.note, res.note) << res.index;
        EXPECT_TRUE(back.metrics == res.metrics) << res.index;
    }
    std::remove(path.c_str());
}

TEST(JournalTest, LoadRejectsWrongGridAndKeepsTornPrefix)
{
    const SweepSpec spec = small_spec();
    const std::string path = ::testing::TempDir() + "naq_journal_torn";
    const SweepRun run = SweepRunner(spec).run(eval_point);
    {
        JournalWriter writer(path, spec, true);
        for (size_t i = 0; i < 4; ++i)
            writer.record(run.results[i]);
    }
    // Simulate a crash mid-append: a torn final line.
    {
        std::FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        std::fputs("p 4 1 0 ok 1", f); // No sentinel, no newline.
        std::fclose(f);
    }
    JournalPoints loaded;
    std::string error;
    ASSERT_TRUE(load_journal(path, spec, loaded, error)) << error;
    EXPECT_EQ(loaded.size(), 4u); // The torn record is dropped.

    // A different grid refuses the journal outright.
    SweepSpec other = small_spec();
    other.master_seed = 1234;
    EXPECT_FALSE(load_journal(path, other, loaded, error));
    EXPECT_NE(error.find("different sweep grid"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ResumeTest, ResumedRunIsByteIdenticalToUninterrupted)
{
    const SweepSpec spec = small_spec();
    const SweepRun full = SweepRunner(spec).run(eval_point);

    // First process: evaluates half the grid, then "crashes".
    const std::string path =
        ::testing::TempDir() + "naq_resume_journal";
    {
        JournalWriter writer(path, spec, true);
        size_t recorded = 0;
        try {
            SweepRunner(spec)
                .on_point([&](const SweepPoint &,
                              const PointResult &res) {
                    writer.record(res);
                    if (++recorded == 3)
                        throw std::runtime_error("simulated crash");
                })
                .run(eval_point);
        } catch (const std::runtime_error &) {
            // The "crash". (jobs=1: the throw unwinds run() itself.)
        }
    }

    // Second process: loads the journal, evaluates only the rest.
    JournalPoints done;
    std::string error;
    ASSERT_TRUE(load_journal(path, spec, done, error)) << error;
    ASSERT_GE(done.size(), 3u);
    const size_t resumed_count = done.size();
    const SweepRun resumed = SweepRunner(spec)
                                 .resume(std::move(done))
                                 .run(eval_point);
    EXPECT_EQ(resumed.resumed, resumed_count);

    // Byte-identical artifacts: the resumed run is indistinguishable.
    EXPECT_EQ(to_csv(resumed), to_csv(full));
    EXPECT_EQ(to_json(resumed, false), to_json(full, false));
    std::remove(path.c_str());
}

TEST(ShardTest, ShardsPartitionTheGridExactly)
{
    const SweepSpec spec = small_spec(7);
    const SweepRun full = SweepRunner(spec).run(eval_point);
    const size_t n = 3;
    std::vector<SweepRun> shards;
    for (size_t k = 1; k <= n; ++k)
        shards.push_back(
            SweepRunner(spec).shard(k, n).run(eval_point));

    for (size_t i = 0; i < full.results.size(); ++i) {
        size_t owners = 0;
        for (size_t k = 0; k < n; ++k) {
            const PointResult &res = shards[k].results[i];
            if (res.skipped &&
                res.note.find("other shard") != std::string::npos)
                continue;
            ++owners;
            // The owning shard reproduces the full run's point bits.
            EXPECT_EQ(res.ok, full.results[i].ok) << i;
            EXPECT_EQ(res.status, full.results[i].status) << i;
            EXPECT_TRUE(res.metrics == full.results[i].metrics) << i;
        }
        EXPECT_EQ(owners, 1u) << "point " << i;
    }

    EXPECT_THROW(SweepRunner(spec).shard(0, 2), std::invalid_argument);
    EXPECT_THROW(SweepRunner(spec).shard(3, 2), std::invalid_argument);
}

TEST(ShardTest, ShardJournalsMergeIntoTheFullRun)
{
    // Two shard processes each journal their own points against one
    // grid; a final pass resumes from the merged map and evaluates
    // nothing — the union must equal the uninterrupted run.
    const SweepSpec spec = small_spec(8);
    const SweepRun full = SweepRunner(spec).run(eval_point);

    JournalPoints merged;
    for (size_t k = 1; k <= 2; ++k) {
        SweepRunner(spec)
            .shard(k, 2)
            .on_point([&](const SweepPoint &, const PointResult &res) {
                // Round-trip through the wire format, as a real
                // journal merge would.
                PointResult back;
                ASSERT_TRUE(parse_journal_line(journal_line(res), back));
                merged[back.index] = back;
            })
            .run(eval_point);
    }
    ASSERT_EQ(merged.size(), full.results.size());
    const SweepRun combined =
        SweepRunner(spec).resume(std::move(merged)).run(eval_point);
    EXPECT_EQ(combined.resumed, full.results.size());
    EXPECT_EQ(to_csv(combined), to_csv(full));
    EXPECT_EQ(to_json(combined, false), to_json(full, false));
}

TEST(SinkStatusTest, StatusAndAttemptsSurviveSerialization)
{
    const SweepSpec spec = small_spec();
    const SweepRun run = SweepRunner(spec).run(eval_point);
    EXPECT_EQ(run.retried(), 1u);    // Point 4.
    EXPECT_EQ(run.timed_out(), 0u);

    const std::string csv = to_csv(run);
    EXPECT_NE(csv.find("seed,ok,status"), std::string::npos);
    EXPECT_NE(csv.find("routing-stuck"), std::string::npos);
    EXPECT_NE(csv.find("not-run"), std::string::npos);

    const std::string json = to_json(run, false);
    EXPECT_NE(json.find("\"status\": \"routing-stuck\""),
              std::string::npos);
    EXPECT_NE(json.find("\"attempts\": 3"), std::string::npos);
    // attempts == 1 stays implicit (schema noise kept out).
    EXPECT_EQ(json.find("\"attempts\": 1"), std::string::npos);
}

TEST(SinkStatusTest, FormatDoubleRoundTripsBitExactly)
{
    const double values[] = {0.0,   -0.0,       1.0 / 3.0,
                             1e308, 5e-324,     -123456.789,
                             42.0,  0.1 + 0.2,  1.7976931348623157e308};
    for (const double v : values) {
        const std::string s = format_double(v);
        // strtod, not std::stod: stod throws on the ERANGE underflow
        // a denormal legitimately sets.
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

} // namespace
} // namespace naq::sweep
