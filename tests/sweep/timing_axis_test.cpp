/**
 * @file
 * The `timing` sweep axis: the same grid runs under the closed-form
 * model and the device simulator, rows carry makespan/utilization
 * metrics, and output is byte-identical at any worker count.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "sweep/sink.h"
#include "sweep/standard.h"

namespace naq::sweep {
namespace {

StandardSpec
spec_from(std::vector<std::string> argv)
{
    argv.insert(argv.begin(), "test");
    std::vector<char *> raw;
    for (std::string &s : argv)
        raw.push_back(s.data());
    const Args args(int(raw.size()), raw.data(), 1);
    return standard_spec_from_args(args);
}

SweepRun
run_spec(StandardSpec spec, size_t jobs)
{
    spec.sweep.jobs = jobs;
    const SweepRun run =
        SweepRunner(spec.sweep).run(standard_experiment(spec));
    for (const PointResult &res : run.results)
        EXPECT_TRUE(res.ok) << res.note;
    return run;
}

TEST(TimingAxisTest, CompileOnlyGridCarriesSimMetrics)
{
    const StandardSpec spec = spec_from(
        {"--bench", "bv", "--size", "12", "--mid", "2,3",
         "--timing", "closed,sim"});
    const SweepRun run = run_spec(spec, 1);
    ASSERT_EQ(run.results.size(), 4u);
    const std::string csv = to_csv(run);
    EXPECT_NE(csv.find("makespan_s"), std::string::npos);
    EXPECT_NE(csv.find("utilization"), std::string::npos);
    EXPECT_NE(csv.find("sim_events"), std::string::npos);
    for (const PointResult &res : run.results) {
        const double makespan = res.metrics.get("makespan_s");
        EXPECT_GT(makespan, 0.0);
    }
    // Sim rows report events and real utilization; closed rows 0.
    bool saw_sim_events = false;
    for (size_t i = 0; i < run.results.size(); ++i) {
        const bool is_sim =
            run.points[i].as_str("timing") == "sim";
        const double events = run.results[i].metrics.get("sim_events");
        if (is_sim) {
            EXPECT_GT(events, 0.0);
            saw_sim_events = true;
        } else {
            EXPECT_EQ(events, 0.0);
        }
    }
    EXPECT_TRUE(saw_sim_events);
}

TEST(TimingAxisTest, StrategyGridRunsUnderBothTimings)
{
    const StandardSpec spec = spec_from(
        {"--bench", "cnu", "--size", "20", "--mid", "3", "--strategy",
         "remap,reroute", "--timing", "closed,sim", "--shots", "12"});
    const SweepRun run = run_spec(spec, 1);
    ASSERT_EQ(run.results.size(), 4u);
    for (size_t i = 0; i < run.results.size(); ++i) {
        const PointResult &res = run.results[i];
        EXPECT_GT(res.metrics.get("makespan_s"), 0.0);
        if (run.points[i].as_str("timing") == "sim")
            EXPECT_GT(res.metrics.get("sim_events"), 0.0);
    }
}

TEST(TimingAxisTest, OutputIsByteIdenticalAcrossJobCounts)
{
    const StandardSpec spec = spec_from(
        {"--bench", "bv,cnu", "--size", "12", "--mid", "2,3",
         "--strategy", "reload,remap", "--timing", "closed,sim",
         "--shots", "10"});
    const SweepRun seq = run_spec(spec, 1);
    const SweepRun par = run_spec(spec, 4);
    EXPECT_EQ(to_csv(seq), to_csv(par));
    // JSON carries one wall-clock header line; everything else must
    // be byte-identical.
    auto strip_wall = [](const std::string &json) {
        std::istringstream in(json);
        std::string out, line;
        while (std::getline(in, line))
            if (line.find("\"wall_ms\"") == std::string::npos)
                out += line + "\n";
        return out;
    };
    EXPECT_EQ(strip_wall(to_json(seq)), strip_wall(to_json(par)));
}

TEST(TimingAxisTest, TrappedIonBackendShowsContention)
{
    StandardSpec spec = spec_from(
        {"--bench", "qft", "--size", "12", "--mid", "3",
         "--timing", "sim"});
    spec.backend = "trapped_ion";
    const SweepRun ti = run_spec(spec, 1);
    StandardSpec na_spec = spec_from(
        {"--bench", "qft", "--size", "12", "--mid", "3",
         "--timing", "sim"});
    const SweepRun na = run_spec(na_spec, 1);
    ASSERT_EQ(ti.results.size(), 1u);
    ASSERT_EQ(na.results.size(), 1u);
    // One interaction zone + slow MS gates: far longer makespan.
    EXPECT_GT(ti.results[0].metrics.get("makespan_s"),
              na.results[0].metrics.get("makespan_s"));
}

TEST(TimingAxisTest, UnknownTimingValueThrows)
{
    EXPECT_THROW(spec_from({"--bench", "bv", "--size", "12", "--mid",
                            "3", "--timing", "psychic"}),
                 std::runtime_error);
    EXPECT_THROW(
        spec_from({"--bench", "bv", "--size", "12", "--mid", "3",
                   "--timing", ""}),
        std::runtime_error);
}

} // namespace
} // namespace naq::sweep
