/**
 * @file
 * The cross-sweep compile memo inside the standard experiment:
 * repeated grid points share compiles (aggregate hits observable),
 * the per-row `memo_hit` flag is deterministic at any worker count,
 * and memo-on output equals memo-off output metric for metric — the
 * memo may only save time, never change results.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "sweep/sink.h"
#include "sweep/standard.h"

namespace naq::sweep {
namespace {

/** `line` minus its last `n` comma-separated fields. */
std::string
drop_fields(std::string line, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        const size_t c = line.rfind(',');
        EXPECT_NE(c, std::string::npos);
        line.resize(c);
    }
    return line;
}

/**
 * Rows of `with` (which carries a trailing memo_hit metric before
 * the note) must equal rows of `without` (no memo column) on every
 * axis and metric field.
 */
void
expect_same_metrics(const std::string &with, const std::string &without)
{
    std::istringstream a(with), b(without);
    std::string la, lb;
    while (std::getline(b, lb)) {
        ASSERT_TRUE(std::getline(a, la));
        EXPECT_EQ(drop_fields(la, 2), drop_fields(lb, 1));
    }
    EXPECT_FALSE(std::getline(a, la)); // Same row count.
}

StandardSpec
spec_from(std::vector<std::string> argv)
{
    argv.insert(argv.begin(), "test");
    std::vector<char *> raw;
    for (std::string &s : argv)
        raw.push_back(s.data());
    const Args args(int(raw.size()), raw.data(), 1);
    return standard_spec_from_args(args);
}

std::string
run_csv(StandardSpec spec, size_t jobs, size_t memo_capacity,
        std::shared_ptr<CompileMemo> memo = nullptr)
{
    spec.sweep.jobs = jobs;
    spec.memo_capacity = memo_capacity;
    const SweepRun run =
        SweepRunner(spec.sweep).run(standard_experiment(spec, memo));
    for (const PointResult &res : run.results)
        EXPECT_TRUE(res.ok) << res.note;
    return to_csv(run);
}

TEST(MemoSweepTest, TrialAxisRepeatsHitTheMemo)
{
    // A trial axis repeats every compile-only point verbatim: with 3
    // trials, two thirds of all lookups must be hits, and every
    // trial > 0 row must carry memo_hit = 1.
    const StandardSpec spec =
        spec_from({"--bench", "bv,cnu", "--size", "10,14", "--mid",
                   "2,3", "--trials", "3"});
    // jobs=1 for exact counters: concurrent workers may duplicate a
    // miss on the same key (benign for results, racy for counts).
    auto memo = std::make_shared<CompileMemo>(256);
    const std::string csv = run_csv(spec, 1, 256, memo);
    EXPECT_EQ(memo->hits(), 16u);  // 24 points, 8 unique compiles.
    EXPECT_EQ(memo->misses(), 8u);
    // Deterministic flag column: 16 rows flagged.
    size_t flagged = 0;
    size_t pos = 0;
    while ((pos = csv.find(",1,\n", pos)) != std::string::npos) {
        ++flagged;
        ++pos;
    }
    // memo_hit is the last metric before the empty note field.
    EXPECT_EQ(flagged, 16u);
}

TEST(MemoSweepTest, MemoHitRowsAreByteIdenticalAcrossJobs)
{
    const StandardSpec spec =
        spec_from({"--bench", "bv,cuccaro", "--size", "10,14", "--mid",
                   "2,3", "--trials", "2"});
    const std::string seq = run_csv(spec, 1, 128);
    const std::string par = run_csv(spec, 4, 128);
    EXPECT_EQ(seq, par);
    EXPECT_NE(seq.find("memo_hit"), std::string::npos);
}

TEST(MemoSweepTest, MemoChangesNoMetricOnCompileSweeps)
{
    // Same grid with the memo off: every row must agree on every
    // metric (the memo-on run just adds the memo_hit column).
    const StandardSpec spec = spec_from(
        {"--bench", "bv,qft", "--size", "12,16", "--mid", "2,3"});
    std::string with = run_csv(spec, 2, 64);
    const std::string without = run_csv(spec, 2, 0);
    EXPECT_EQ(without.find("memo_hit"), std::string::npos);
    expect_same_metrics(with, without);
}

TEST(MemoSweepTest, StrategySweepSharesPrepareCompiles)
{
    // A loss_improvement axis repeats (program, MID, strategy) with a
    // different loss model only — the prepare compile is shared, the
    // shot outcomes stay identical to the memo-off run.
    const StandardSpec spec = spec_from(
        {"--bench", "bv", "--size", "12", "--mid", "3", "--strategy",
         "reroute", "--loss-improvement", "1,10,100", "--shots", "10"});
    auto memo = std::make_shared<CompileMemo>(64);
    const std::string with = run_csv(spec, 1, 64, memo);
    const std::string without = run_csv(spec, 1, 0);
    EXPECT_EQ(memo->misses(), 1u); // One compile serves all 3 points.
    EXPECT_EQ(memo->hits(), 2u);
    expect_same_metrics(with, without);
}

TEST(MemoSweepTest, DifferentStrategiesShareCompatibleCompiles)
{
    // remap and reroute both compile at the device MID: 2 points,
    // 1 compile. compile-small compiles one unit lower: its own key.
    const StandardSpec spec = spec_from(
        {"--bench", "bv", "--size", "12", "--mid", "3", "--strategy",
         "remap,reroute,small", "--shots", "5"});
    auto memo = std::make_shared<CompileMemo>(64);
    run_csv(spec, 1, 64, memo);
    EXPECT_EQ(memo->misses(), 2u);
    EXPECT_EQ(memo->hits(), 1u);
}

TEST(MemoSweepTest, ZeroCapacityOmitsTheColumn)
{
    const StandardSpec spec = spec_from(
        {"--bench", "bv", "--size", "10", "--mid", "2", "--memo", "0"});
    EXPECT_EQ(spec.memo_capacity, 0u);
    const std::string csv = run_csv(spec, 1, 0);
    EXPECT_EQ(csv.find("memo_hit"), std::string::npos);
}

} // namespace
} // namespace naq::sweep
