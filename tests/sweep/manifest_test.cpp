/**
 * @file
 * The manifest-driven corpus gate: `parse_manifest` text handling,
 * `add_manifest` spec wiring (manifest order, mutual exclusion,
 * expected-status map), and `check_manifest` verdicts over real runs
 * — a file expected to fail passes the gate by failing exactly that
 * way, and sharded runs only gate the points they own.
 */
#include "sweep/standard.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/report.h"
#include "sweep/runner.h"
#include "sweep/sink.h"

namespace naq::sweep {
namespace {

namespace fs = std::filesystem;

std::string
corpus_manifest()
{
    return std::string(NAQ_SOURCE_DIR) +
           "/tests/qasm/corpus/manifest.txt";
}

StandardSpec
spec_from(const std::vector<std::string> &tokens)
{
    std::vector<const char *> argv;
    argv.push_back("naqc");
    for (const std::string &t : tokens)
        argv.push_back(t.c_str());
    const Args args(int(argv.size()), argv.data(), 1);
    return standard_spec_from_args(args);
}

TEST(ManifestParseTest, ParsesPathsCommentsAndDefaults)
{
    const std::vector<ManifestEntry> entries = parse_manifest(
        "# corpus gate\n"
        "good.qasm ok\n"
        "\n"
        "plain.qasm          # trailing comment, status omitted\n"
        "bad/broken.qasm qasm-parse-failed\n"
        "/abs/elsewhere.qasm program-too-wide\n",
        "/corpus");
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_EQ(entries[0].path, "/corpus/good.qasm");
    EXPECT_EQ(entries[0].expected, CompileStatus::Ok);
    EXPECT_EQ(entries[1].path, "/corpus/plain.qasm");
    EXPECT_EQ(entries[1].expected, CompileStatus::Ok);
    EXPECT_EQ(entries[2].path, "/corpus/bad/broken.qasm");
    EXPECT_EQ(entries[2].expected, CompileStatus::QasmParseFailed);
    // Absolute paths are kept as written.
    EXPECT_EQ(entries[3].path, "/abs/elsewhere.qasm");
    EXPECT_EQ(entries[3].expected, CompileStatus::ProgramTooWide);
}

TEST(ManifestParseTest, EmptyBaseDirLeavesPathsAsWritten)
{
    const std::vector<ManifestEntry> entries =
        parse_manifest("rel/a.qasm ok\n", "");
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].path, "rel/a.qasm");
}

TEST(ManifestParseTest, UnknownStatusNamesTheLine)
{
    try {
        parse_manifest("a.qasm ok\nb.qasm not-a-status\n", "");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
        EXPECT_NE(what.find("not-a-status"), std::string::npos)
            << what;
    }
}

TEST(ManifestParseTest, ExtraTokenIsRejected)
{
    try {
        parse_manifest("a.qasm ok surprise\n", "");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("surprise"),
                  std::string::npos);
    }
}

TEST(ManifestParseTest, DuplicatePathCitesFirstLine)
{
    try {
        parse_manifest("a.qasm ok\nb.qasm ok\na.qasm ok\n", "/d");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 3"), std::string::npos) << what;
        EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    }
}

TEST(ManifestSpecTest, InstallsQasmAxisInManifestOrder)
{
    const StandardSpec spec = spec_from({"--manifest",
                                         corpus_manifest()});
    const size_t axis = spec.sweep.axis_index("qasm");
    ASSERT_NE(axis, SIZE_MAX);
    const std::vector<AxisValue> &values =
        spec.sweep.axes[axis].values;
    ASSERT_GE(values.size(), 13u);
    // Manifest order, not glob-sorted: the bad/ files come last even
    // though "bad/..." sorts before "bell.qasm".
    const std::string first = std::get<std::string>(values.front());
    const std::string last = std::get<std::string>(values.back());
    EXPECT_NE(first.find("bell.qasm"), std::string::npos) << first;
    EXPECT_NE(last.find("bad/too_wide.qasm"), std::string::npos)
        << last;
    // Every listed file carries an expectation.
    EXPECT_EQ(spec.expected_status.size(), values.size());
    EXPECT_EQ(spec.expected_status.at(last),
              CompileStatus::ProgramTooWide);
}

TEST(ManifestSpecTest, SpecFileAcceptsManifestKey)
{
    const StandardSpec spec = parse_standard_spec(
        "name = corpus-gate\nmanifest = " + corpus_manifest() + "\n");
    EXPECT_EQ(spec.sweep.name, "corpus-gate");
    EXPECT_NE(spec.sweep.axis_index("qasm"), SIZE_MAX);
    EXPECT_FALSE(spec.expected_status.empty());
}

TEST(ManifestSpecTest, MutuallyExclusiveWithQasmAndBench)
{
    const std::string pattern =
        std::string(NAQ_SOURCE_DIR) + "/tests/qasm/corpus/*.qasm";
    for (const std::vector<std::string> &tokens :
         {std::vector<std::string>{"--manifest", corpus_manifest(),
                                   "--qasm", pattern},
          std::vector<std::string>{"--manifest", corpus_manifest(),
                                   "--bench", "bv", "--size", "8"}}) {
        try {
            spec_from(tokens);
            FAIL() << "expected std::runtime_error";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(
                std::string(e.what()).find("mutually exclusive"),
                std::string::npos)
                << e.what();
        }
    }
}

TEST(ManifestSpecTest, MissingOrEmptyManifestThrows)
{
    StandardSpec spec;
    EXPECT_THROW(add_manifest(spec, "/nonexistent/manifest.txt"),
                 std::runtime_error);

    const fs::path dir =
        fs::temp_directory_path() /
        ("naq_manifest_empty_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    {
        std::ofstream out(dir / "empty.txt");
        out << "# only comments\n\n";
    }
    StandardSpec fresh;
    EXPECT_THROW(add_manifest(fresh, (dir / "empty.txt").string()),
                 std::runtime_error);
    fs::remove_all(dir);
}

TEST(ManifestRunTest, CorpusGatePassesAndIsByteIdenticalAcrossJobs)
{
    StandardSpec spec = spec_from({"--manifest", corpus_manifest()});

    spec.sweep.jobs = 1;
    const SweepRun run1 =
        SweepRunner(spec.sweep).run(standard_experiment(spec));
    EXPECT_TRUE(check_manifest(run1, spec).empty());

    spec.sweep.jobs = 4;
    const SweepRun run4 =
        SweepRunner(spec.sweep).run(standard_experiment(spec));
    EXPECT_TRUE(check_manifest(run4, spec).empty());

    EXPECT_EQ(to_csv(run1), to_csv(run4));
    EXPECT_EQ(to_json(run1, /*include_wall=*/false),
              to_json(run4, /*include_wall=*/false));
}

TEST(ManifestRunTest, MismatchReportsFileAndBothStatuses)
{
    StandardSpec spec = spec_from({"--manifest", corpus_manifest()});
    // Flip one expectation: the parse-error file is now "expected"
    // to compile cleanly, so the gate must flag exactly that file.
    std::string flipped;
    for (auto &[path, expected] : spec.expected_status) {
        if (expected == CompileStatus::QasmParseFailed) {
            expected = CompileStatus::Ok;
            flipped = path;
        }
    }
    ASSERT_FALSE(flipped.empty());

    const SweepRun run =
        SweepRunner(spec.sweep).run(standard_experiment(spec));
    const std::vector<ManifestMismatch> mismatches =
        check_manifest(run, spec);
    ASSERT_EQ(mismatches.size(), 1u);
    EXPECT_EQ(mismatches[0].path, flipped);
    EXPECT_EQ(mismatches[0].expected, CompileStatus::Ok);
    EXPECT_EQ(mismatches[0].actual, CompileStatus::QasmParseFailed);
    EXPECT_FALSE(mismatches[0].note.empty());
}

TEST(ManifestRunTest, UnexpectedlyCleanCompileIsAMismatch)
{
    // A good file marked as expected-to-fail must be flagged: the
    // gate asserts outcomes in both directions.
    StandardSpec spec = spec_from({"--manifest", corpus_manifest()});
    std::string good;
    for (auto &[path, expected] : spec.expected_status) {
        if (path.find("bell.qasm") != std::string::npos) {
            expected = CompileStatus::QasmParseFailed;
            good = path;
        }
    }
    ASSERT_FALSE(good.empty());

    const SweepRun run =
        SweepRunner(spec.sweep).run(standard_experiment(spec));
    const std::vector<ManifestMismatch> mismatches =
        check_manifest(run, spec);
    ASSERT_EQ(mismatches.size(), 1u);
    EXPECT_EQ(mismatches[0].path, good);
    EXPECT_EQ(mismatches[0].actual, CompileStatus::Ok);
}

TEST(ManifestRunTest, ShardedRunOnlyGatesItsOwnPoints)
{
    // Break every expectation, then shard: each shard reports only
    // the mismatches among the points it evaluated, and together the
    // shards cover the full manifest.
    StandardSpec spec = spec_from({"--manifest", corpus_manifest()});
    for (auto &[path, expected] : spec.expected_status)
        expected = CompileStatus::RoutingStuck;

    size_t total = 0;
    for (size_t k = 1; k <= 2; ++k) {
        SweepRunner runner(spec.sweep);
        runner.shard(k, 2);
        const SweepRun run = runner.run(standard_experiment(spec));
        const std::vector<ManifestMismatch> mismatches =
            check_manifest(run, spec);
        for (const ManifestMismatch &m : mismatches)
            EXPECT_FALSE(run.results[m.point_index].skipped);
        EXPECT_LT(mismatches.size(), spec.expected_status.size());
        total += mismatches.size();
    }
    EXPECT_EQ(total, spec.expected_status.size());
}

TEST(ManifestRunTest, MissingFileRowsCanBeExpected)
{
    // A listed-but-absent file is a per-point io-error row, which a
    // manifest can legitimately expect — the gate stays green.
    const fs::path dir =
        fs::temp_directory_path() /
        ("naq_manifest_missing_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    {
        std::ofstream good(dir / "good.qasm");
        good << "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], "
                "q[1];\n";
        std::ofstream manifest(dir / "manifest.txt");
        manifest << "good.qasm ok\nmissing.qasm io-error\n";
    }
    StandardSpec spec;
    add_manifest(spec, (dir / "manifest.txt").string());
    spec.sweep.axis("mid", nums({3.0}));
    const SweepRun run =
        SweepRunner(spec.sweep).run(standard_experiment(spec));
    fs::remove_all(dir);

    EXPECT_TRUE(check_manifest(run, spec).empty());
    ASSERT_EQ(run.results.size(), 2u);
    EXPECT_TRUE(run.results[0].ok) << run.results[0].note;
    EXPECT_FALSE(run.results[1].ok);
    EXPECT_EQ(run.results[1].status, CompileStatus::IoError);
}

} // namespace
} // namespace naq::sweep
