/**
 * @file
 * The `qasm` sweep axis: glob expansion into deterministic grid
 * points, spec validation, and the engine's core contract — jobs > 1
 * output byte-identical to jobs = 1 — over an external QASM corpus,
 * for both compile-only and shot-loop sweeps.
 */
#include "sweep/standard.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sweep/runner.h"
#include "sweep/sink.h"
#include "util/glob.h"

namespace naq::sweep {
namespace {

namespace fs = std::filesystem;

std::string
corpus_pattern()
{
    return std::string(NAQ_SOURCE_DIR) + "/tests/qasm/corpus/*.qasm";
}

StandardSpec
spec_from(const std::vector<std::string> &tokens)
{
    std::vector<const char *> argv;
    argv.push_back("naqc");
    for (const std::string &t : tokens)
        argv.push_back(t.c_str());
    const Args args(int(argv.size()), argv.data(), 1);
    return standard_spec_from_args(args);
}

TEST(QasmAxisSpecTest, GlobExpandsToSortedFilePaths)
{
    const StandardSpec spec =
        spec_from({"--qasm", corpus_pattern(), "--mid", "2,3"});
    const size_t axis = spec.sweep.axis_index("qasm");
    ASSERT_NE(axis, SIZE_MAX);

    const std::vector<std::string> expected =
        glob_files(corpus_pattern());
    ASSERT_GE(expected.size(), 5u);
    const std::vector<AxisValue> &values =
        spec.sweep.axes[axis].values;
    ASSERT_EQ(values.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(std::get<std::string>(values[i]), expected[i]);

    // No implicit 'size' axis alongside qasm; mid kept as given.
    EXPECT_EQ(spec.sweep.axis_index("size"), SIZE_MAX);
    EXPECT_NE(spec.sweep.axis_index("mid"), SIZE_MAX);
}

TEST(QasmAxisSpecTest, SpecFileAcceptsQasmAxis)
{
    const StandardSpec spec = parse_standard_spec(
        "name = corpus-demo\nqasm = " + corpus_pattern() +
        "\nmid = 2\n");
    EXPECT_EQ(spec.sweep.name, "corpus-demo");
    EXPECT_NE(spec.sweep.axis_index("qasm"), SIZE_MAX);
}

TEST(QasmAxisSpecTest, BenchAndQasmAreMutuallyExclusive)
{
    try {
        spec_from({"--qasm", corpus_pattern(), "--bench", "bv"});
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("mutually exclusive"),
                  std::string::npos);
    }
}

TEST(QasmAxisSpecTest, SizeAxisRequiresBench)
{
    EXPECT_THROW(
        spec_from({"--qasm", corpus_pattern(), "--size", "10"}),
        std::runtime_error);
}

TEST(QasmAxisSpecTest, EitherBenchOrQasmIsRequired)
{
    try {
        spec_from({"--mid", "2"});
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("'bench' or 'qasm'"),
                  std::string::npos);
    }
}

TEST(QasmAxisSpecTest, UnmatchedPatternThrows)
{
    const std::string empty_pattern =
        std::string(NAQ_SOURCE_DIR) + "/tests/qasm/corpus/*.nomatch";
    EXPECT_THROW(spec_from({"--qasm", empty_pattern}),
                 std::runtime_error);
}

TEST(QasmAxisSpecTest, MissingDirectoryThrows)
{
    EXPECT_THROW(spec_from({"--qasm", "/nonexistent/dir/*.qasm"}),
                 std::runtime_error);
}

/** Run `spec` at the given worker count, returning (csv, json). */
std::pair<std::string, std::string>
run_serialized(StandardSpec spec, size_t jobs)
{
    spec.sweep.jobs = jobs;
    SweepRunner runner(spec.sweep);
    const SweepRun run = runner.run(standard_experiment(spec));
    return {to_csv(run), to_json(run, /*include_wall=*/false)};
}

TEST(QasmAxisRunTest, CompileSweepIsByteIdenticalAcrossJobs)
{
    const StandardSpec spec =
        spec_from({"--qasm", corpus_pattern(), "--mid", "2,3"});
    const auto [csv1, json1] = run_serialized(spec, 1);
    const auto [csv4, json4] = run_serialized(spec, 4);
    EXPECT_EQ(csv1, csv4);
    EXPECT_EQ(json1, json4);
}

TEST(QasmAxisRunTest, ShotLoopSweepIsByteIdenticalAcrossJobs)
{
    const StandardSpec spec = spec_from(
        {"--qasm", corpus_pattern(), "--mid", "2", "--strategy",
         "reroute", "--shots", "5"});
    const auto [csv1, json1] = run_serialized(spec, 1);
    const auto [csv4, json4] = run_serialized(spec, 4);
    EXPECT_EQ(csv1, csv4);
    EXPECT_EQ(json1, json4);
    // Shot-loop metrics actually ran (not just compile metrics).
    EXPECT_NE(csv1.find("ok_shots"), std::string::npos);
}

TEST(QasmAxisRunTest, RowsCarryTheSourceFilename)
{
    const StandardSpec spec =
        spec_from({"--qasm", corpus_pattern(), "--mid", "2"});
    SweepRunner runner(spec.sweep);
    const SweepRun run = runner.run(standard_experiment(spec));

    const std::string csv = to_csv(run);
    for (const std::string &file : glob_files(corpus_pattern()))
        EXPECT_NE(csv.find(file), std::string::npos)
            << "row lost its source path " << file;
    for (const PointResult &res : run.results) {
        EXPECT_TRUE(res.ok) << res.note;
        EXPECT_TRUE(res.metrics.has("gates"));
        EXPECT_TRUE(res.metrics.has("depth"));
    }
}

TEST(QasmAxisRunTest, BadFileFailsOnlyItsOwnPoints)
{
    // Unique per process: concurrent ctest runs must not share (and
    // remove_all) each other's corpus.
    const fs::path dir =
        fs::temp_directory_path() /
        ("naq_qasm_axis_badfile_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    {
        std::ofstream good(dir / "a_good.qasm");
        good << "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], "
                "q[1];\n";
        std::ofstream bad(dir / "b_bad.qasm");
        bad << "OPENQASM 2.0;\nqreg q[2];\nbogus(1,2,3) q[0];\n";
    }

    const StandardSpec spec = spec_from(
        {"--qasm", (dir / "*.qasm").string(), "--mid", "2"});
    SweepRunner runner(spec.sweep);
    const SweepRun run = runner.run(standard_experiment(spec));
    fs::remove_all(dir);

    ASSERT_EQ(run.results.size(), 2u);
    EXPECT_TRUE(run.results[0].ok) << run.results[0].note;
    EXPECT_FALSE(run.results[1].ok);
    EXPECT_NE(run.results[1].note.find("qasm:3:"), std::string::npos)
        << "parse diagnostic lost: " << run.results[1].note;
}

} // namespace
} // namespace naq::sweep
