/**
 * @file
 * Grid expansion of SweepSpec: deterministic row-major ordering,
 * cartesian sizing, per-point seed derivation, and typed coordinate
 * access — the contracts every figure port and `naqc sweep` rely on.
 */
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "sweep/spec.h"

namespace naq::sweep {
namespace {

SweepSpec
demo_spec()
{
    SweepSpec spec;
    spec.name = "demo";
    spec.master_seed = 42;
    spec.axis("bench", strs({"BV", "CNU"}))
        .axis("size", ints({10, 20, 30}))
        .axis("mid", nums({2.0, 3.0}));
    return spec;
}

TEST(SweepSpecTest, CartesianSize)
{
    const SweepSpec spec = demo_spec();
    EXPECT_EQ(spec.num_points(), 2u * 3u * 2u);
    EXPECT_EQ(spec.expand().size(), 12u);

    SweepSpec empty;
    EXPECT_EQ(empty.num_points(), 0u);
    EXPECT_TRUE(empty.expand().empty());

    SweepSpec hollow;
    hollow.axis("a", ints({1, 2})).axis("b", {});
    EXPECT_EQ(hollow.num_points(), 0u);
}

TEST(SweepSpecTest, RowMajorOrderFirstAxisSlowest)
{
    const SweepSpec spec = demo_spec();
    const std::vector<SweepPoint> points = spec.expand();
    ASSERT_EQ(points.size(), 12u);

    // The last axis (mid) spins fastest, the first (bench) slowest.
    EXPECT_EQ(points[0].as_str("bench"), "BV");
    EXPECT_EQ(points[0].as_int("size"), 10);
    EXPECT_EQ(points[0].as_num("mid"), 2.0);
    EXPECT_EQ(points[1].as_num("mid"), 3.0);
    EXPECT_EQ(points[2].as_int("size"), 20);
    EXPECT_EQ(points[6].as_str("bench"), "CNU");
    EXPECT_EQ(points[11].as_str("bench"), "CNU");
    EXPECT_EQ(points[11].as_int("size"), 30);
    EXPECT_EQ(points[11].as_num("mid"), 3.0);

    // Flat index reconstruction: i = (c0 * 3 + c1) * 2 + c2.
    for (size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].index, i);
        const auto &c = points[i].coord;
        EXPECT_EQ((c[0] * 3 + c[1]) * 2 + c[2], i);
    }
}

TEST(SweepSpecTest, SeedDerivationDeterministicAndDistinct)
{
    const SweepSpec spec = demo_spec();
    const std::vector<SweepPoint> a = spec.expand();
    const std::vector<SweepPoint> b = spec.expand();

    std::set<uint64_t> seeds;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed) << "point " << i;
        EXPECT_EQ(a[i].seed, derive_seed(spec.master_seed, i));
        seeds.insert(a[i].seed);
    }
    // All per-point seeds distinct across the grid.
    EXPECT_EQ(seeds.size(), a.size());

    // A different master seed changes every stream.
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NE(a[i].seed, derive_seed(spec.master_seed + 1, i));
}

TEST(SweepSpecTest, TypedAccessors)
{
    const SweepSpec spec = demo_spec();
    const SweepPoint p = spec.expand().at(7); // CNU, 10, 3.0
    EXPECT_TRUE(p.has("bench"));
    EXPECT_FALSE(p.has("strategy"));
    EXPECT_EQ(p.as_str("bench"), "CNU");
    EXPECT_EQ(p.as_int("size"), 10);
    EXPECT_EQ(p.as_num("size"), 10.0); // Int axes convert to num.
    EXPECT_EQ(p.as_num("mid"), 3.0);
    EXPECT_THROW(p.value("nope"), std::out_of_range);
    EXPECT_THROW(p.as_int("bench"), std::bad_variant_access);
}

TEST(SweepSpecTest, AxisAndValueLookup)
{
    const SweepSpec spec = demo_spec();
    EXPECT_EQ(spec.axis_index("bench"), 0u);
    EXPECT_EQ(spec.axis_index("mid"), 2u);
    EXPECT_EQ(spec.axis_index("nope"), SIZE_MAX);
    EXPECT_EQ(spec.value_index(1, AxisValue(20LL)), 1u);
    // Type mismatch is a miss, not a match: 20.0 != 20LL.
    EXPECT_EQ(spec.value_index(1, AxisValue(20.0)), SIZE_MAX);
}

TEST(SweepSpecTest, IndicesHelper)
{
    const std::vector<AxisValue> idx = indices(3);
    ASSERT_EQ(idx.size(), 3u);
    EXPECT_EQ(std::get<long long>(idx[0]), 0);
    EXPECT_EQ(std::get<long long>(idx[2]), 2);
    EXPECT_EQ(axis_value_str(idx[2]), "2");
    EXPECT_EQ(axis_value_str(AxisValue(2.5)), "2.5");
    EXPECT_EQ(axis_value_str(AxisValue(std::string("BV"))), "BV");
}

} // namespace
} // namespace naq::sweep
