/**
 * @file
 * The serve daemon's persisted memo store: byte-exact round trips
 * (every field of every cached CompileResult survives save + load,
 * including failures), recency-preserving truncation, and the
 * corruption contract — a torn, bit-flipped, or alien file loads as
 * `Invalid` with zero entries seeded, never a crash or a partial
 * cache.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "benchmarks/benchmarks.h"
#include "core/compile_memo.h"
#include "serve/memo_store.h"
#include "util/fault.h"
#include "util/io.h"

namespace naq::serve {
namespace {

std::string
store_path(const std::string &name)
{
    return ::testing::TempDir() + name;
}

/** A memo seeded with real compiles: two successes, one failure. */
std::shared_ptr<CompileMemo>
seeded_memo()
{
    auto memo = std::make_shared<CompileMemo>(8);
    const GridTopology topo(6, 6);
    const GridTopology tiny(2, 2);
    const CompilerOptions opts = CompilerOptions::neutral_atom(3.0);
    for (const size_t size : {8u, 12u}) {
        const Circuit program =
            benchmarks::make(benchmarks::Kind::BV, size, 7);
        memo->get_or_compile(
            CompileMemo::make_key("bv:" + std::to_string(size), topo,
                                  opts),
            [&] { return compile(program, topo, opts); });
    }
    // A deterministic failure (program wider than the device): the
    // store must persist failures too — re-diagnosing a broken file
    // on every restart is exactly the work the memo exists to skip.
    const Circuit wide = benchmarks::make(benchmarks::Kind::BV, 16, 7);
    memo->get_or_compile(CompileMemo::make_key("wide", tiny, opts),
                         [&] { return compile(wide, tiny, opts); });
    return memo;
}

void
expect_same_entries(const CompileMemo &a, const CompileMemo &b)
{
    const auto ea = a.entries();
    const auto eb = b.entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].first, eb[i].first) << "entry " << i;
        const CompileResult &ra = *ea[i].second;
        const CompileResult &rb = *eb[i].second;
        EXPECT_EQ(ra.success, rb.success);
        EXPECT_EQ(ra.status, rb.status);
        EXPECT_EQ(ra.failure_reason, rb.failure_reason);
        EXPECT_TRUE(ra.compiled == rb.compiled) << "entry " << i;
        ASSERT_EQ(ra.report.passes.size(), rb.report.passes.size());
        for (size_t p = 0; p < ra.report.passes.size(); ++p) {
            EXPECT_EQ(ra.report.passes[p].pass,
                      rb.report.passes[p].pass);
            EXPECT_EQ(ra.report.passes[p].status,
                      rb.report.passes[p].status);
            EXPECT_EQ(ra.report.passes[p].wall_ms,
                      rb.report.passes[p].wall_ms);
            EXPECT_EQ(ra.report.passes[p].attempts,
                      rb.report.passes[p].attempts);
        }
    }
}

TEST(MemoStoreTest, RoundTripRestoresEveryEntryBitIdentically)
{
    const auto memo = seeded_memo();
    const std::string path = store_path("memo_store_roundtrip.txt");
    std::string error;
    ASSERT_TRUE(save_memo_store(path, *memo, 0, error)) << error;

    CompileMemo loaded(8);
    size_t restored = 0;
    EXPECT_EQ(load_memo_store(path, loaded, restored, error),
              MemoLoad::Loaded)
        << error;
    EXPECT_EQ(restored, 3u);
    // Same entries in the same recency order — and neither the dump
    // nor the reload touched the hit/miss counters.
    expect_same_entries(*memo, loaded);
    EXPECT_EQ(loaded.hits(), 0u);
    EXPECT_EQ(loaded.misses(), 0u);

    // A second save of the reloaded memo is byte-identical: the
    // serialization is a pure function of the entries.
    EXPECT_EQ(serialize_memo_store(*memo), serialize_memo_store(loaded));
    std::remove(path.c_str());
}

TEST(MemoStoreTest, TruncationKeepsTheHottestEntries)
{
    const auto memo = seeded_memo(); // MRU order: wide, bv:12, bv:8.
    const std::string path = store_path("memo_store_trunc.txt");
    std::string error;
    ASSERT_TRUE(save_memo_store(path, *memo, 2, error)) << error;

    CompileMemo loaded(8);
    size_t restored = 0;
    ASSERT_EQ(load_memo_store(path, loaded, restored, error),
              MemoLoad::Loaded)
        << error;
    EXPECT_EQ(restored, 2u);
    const auto entries = loaded.entries();
    ASSERT_EQ(entries.size(), 2u);
    // The hottest two survived, still hottest-first.
    EXPECT_EQ(entries[0].first, memo->entries()[0].first);
    EXPECT_EQ(entries[1].first, memo->entries()[1].first);
    std::remove(path.c_str());
}

TEST(MemoStoreTest, MissingFileIsACleanColdStart)
{
    CompileMemo memo(4);
    size_t restored = 99;
    std::string error;
    EXPECT_EQ(load_memo_store(store_path("memo_store_nope.txt"), memo,
                              restored, error),
              MemoLoad::NoFile);
    EXPECT_EQ(restored, 0u);
    EXPECT_EQ(memo.size(), 0u);
}

TEST(MemoStoreTest, CorruptionIsDetectedAndSeedsNothing)
{
    const auto memo = seeded_memo();
    const std::string path = store_path("memo_store_corrupt.txt");
    std::string error;
    ASSERT_TRUE(save_memo_store(path, *memo, 0, error)) << error;
    const std::string good = read_text_file(path);

    const auto expect_invalid = [&](const std::string &text,
                                    const char *what) {
        std::ofstream(path, std::ios::binary | std::ios::trunc)
            << text;
        CompileMemo loaded(8);
        size_t restored = 0;
        std::string err;
        EXPECT_EQ(load_memo_store(path, loaded, restored, err),
                  MemoLoad::Invalid)
            << what;
        EXPECT_FALSE(err.empty()) << what;
        // All-or-nothing: a bad file seeds zero entries.
        EXPECT_EQ(loaded.size(), 0u) << what;
        EXPECT_EQ(restored, 0u) << what;
    };

    expect_invalid("not a store at all\n", "alien file");
    expect_invalid("naq-memo-store-v2 0 0\n", "future version");
    // Bit flip in the payload: the checksum must catch it.
    std::string flipped = good;
    flipped[flipped.size() / 2] ^= 0x01;
    expect_invalid(flipped, "bit flip");
    // Torn tail: the kill -9 shape (truncated mid-entry).
    expect_invalid(good.substr(0, good.size() - 10), "torn tail");
    // Entry count lies.
    std::string miscounted = good;
    const size_t sp = miscounted.find(' ');
    miscounted[sp + 1] = '9';
    expect_invalid(miscounted, "wrong entry count");
    std::remove(path.c_str());
}

TEST(MemoStoreTest, PersistFaultFailsTheSaveAndKeepsTheOldStore)
{
    const auto memo = seeded_memo();
    const std::string path = store_path("memo_store_fault.txt");
    std::string error;
    ASSERT_TRUE(save_memo_store(path, *memo, 0, error)) << error;
    const std::string before = read_text_file(path);

    // The serve-persist site (path-qualified) fails the next save
    // without touching the existing file — then self-heals.
    FaultInjector::global().arm("serve-persist=" + path + ":1");
    std::string err;
    EXPECT_FALSE(save_memo_store(path, *memo, 0, err));
    EXPECT_NE(err.find("injected"), std::string::npos) << err;
    EXPECT_EQ(read_text_file(path), before);
    EXPECT_TRUE(save_memo_store(path, *memo, 0, err)) << err;
    FaultInjector::global().disarm();
    std::remove(path.c_str());
}

TEST(MemoStoreTest, RestoreRefusesTransientResults)
{
    // A cancelled/deadline verdict describes one run's interruption,
    // not the program — `restore` must refuse it just like
    // `get_or_compile` refuses to cache it.
    CompileMemo memo(4);
    auto cancelled = std::make_shared<CompileResult>();
    cancelled->success = false;
    cancelled->status = CompileStatus::Cancelled;
    EXPECT_FALSE(memo.restore("k", std::move(cancelled)));
    EXPECT_EQ(memo.size(), 0u);
}

} // namespace
} // namespace naq::serve
