/**
 * @file
 * Unit tests of the `naq-serve-v1` wire protocol: the strict request
 * parser (exact rejection reasons — a service must never guess), the
 * flat-JSON scanner's escape handling, and response formatting round-
 * tripping through the same scanner.
 */
#include <gtest/gtest.h>

#include "serve/protocol.h"

namespace naq::serve {
namespace {

Request
must_parse(const std::string &line)
{
    Request req;
    std::string error;
    EXPECT_TRUE(parse_request(line, req, error)) << line << ": "
                                                 << error;
    return req;
}

std::string
must_fail(const std::string &line)
{
    Request req;
    std::string error;
    EXPECT_FALSE(parse_request(line, req, error)) << line;
    EXPECT_FALSE(error.empty()) << line;
    return error;
}

TEST(ServeProtocolTest, ParsesMinimalInlineRequest)
{
    const Request req =
        must_parse("{\"id\":\"r1\",\"qasm\":\"OPENQASM 2.0;\"}");
    EXPECT_EQ(req.id, "r1");
    EXPECT_EQ(req.qasm, "OPENQASM 2.0;");
    EXPECT_TRUE(req.in_path.empty());
    EXPECT_EQ(req.deadline_ms, 0.0);
}

TEST(ServeProtocolTest, ParsesFileRequestWithDeadline)
{
    const Request req = must_parse(
        "{\"id\":\"r2\",\"in\":\"a/b.qasm\",\"deadline_ms\":250.5}");
    EXPECT_EQ(req.id, "r2");
    EXPECT_EQ(req.in_path, "a/b.qasm");
    EXPECT_EQ(req.deadline_ms, 250.5);
}

TEST(ServeProtocolTest, DecodesStandardAndUnicodeEscapes)
{
    const Request req = must_parse(
        "{\"id\":\"e\",\"qasm\":\"a\\n\\t\\\"b\\\\c\\u0041"
        "\\ud83d\\ude00\"}");
    EXPECT_EQ(req.qasm, "a\n\t\"b\\cA\xf0\x9f\x98\x80");
}

TEST(ServeProtocolTest, RejectsMalformedRequests)
{
    // Every rejection reason in the contract, each with a distinct
    // diagnostic.
    EXPECT_NE(must_fail("").find("expected '{'"), std::string::npos);
    EXPECT_NE(must_fail("{\"qasm\":\"x\"}").find("\"id\""),
              std::string::npos);
    EXPECT_NE(must_fail("{\"id\":\"\",\"qasm\":\"x\"}").find("empty"),
              std::string::npos);
    EXPECT_NE(must_fail("{\"id\":\"a\"}").find("required"),
              std::string::npos);
    EXPECT_NE(must_fail("{\"id\":\"a\",\"qasm\":\"x\",\"in\":\"y\"}")
                  .find("mutually exclusive"),
              std::string::npos);
    EXPECT_NE(must_fail("{\"id\":\"a\",\"in\":\"\"}").find("path"),
              std::string::npos);
    EXPECT_NE(must_fail("{\"id\":\"a\",\"qasm\":\"x\","
                        "\"deadline_ms\":-1}")
                  .find("non-negative"),
              std::string::npos);
    EXPECT_NE(must_fail("{\"id\":\"a\",\"qasm\":\"x\",\"typo\":1}")
                  .find("unknown key"),
              std::string::npos);
    EXPECT_NE(must_fail("{\"id\":1,\"qasm\":\"x\"}").find("string"),
              std::string::npos);
    EXPECT_NE(must_fail("{\"id\":\"a\",\"qasm\":\"x\"} trailing")
                  .find("trailing"),
              std::string::npos);
    EXPECT_NE(must_fail("{\"id\":\"a\",\"id\":\"b\",\"qasm\":\"x\"}")
                  .find("duplicate"),
              std::string::npos);
    EXPECT_NE(must_fail("{\"id\":\"a\",\"qasm\":\"\\ud800x\"}")
                  .find("surrogate"),
              std::string::npos);
}

TEST(ServeProtocolTest, RecoversIdFromInvalidRequests)
{
    // A correlatable error response needs the id even when the rest
    // of the line is garbage.
    Request req;
    std::string error;
    EXPECT_FALSE(parse_request("{\"id\":\"r9\",\"nope\":true}", req,
                               error));
    EXPECT_EQ(req.id, "r9");
}

/** Find `key` in a parsed flat object (null value when absent). */
const JsonValue *
find(const std::vector<std::pair<std::string, JsonValue>> &fields,
     const std::string &key)
{
    for (const auto &kv : fields)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

TEST(ServeProtocolTest, ResponseRoundTripsThroughTheScanner)
{
    Response r;
    r.id = "weird \"id\"\n";
    r.ok = true;
    r.status = "ok";
    r.latency_ms = 1.5;
    r.queue_depth = 3;
    r.memo = "hit";
    r.gates = 61;
    r.timesteps = 17;
    r.swaps = 4;
    PassReport pr;
    pr.pass = "route";
    pr.status = CompileStatus::Ok;
    pr.wall_ms = 0.25;
    pr.attempts = 2;
    r.passes.push_back(pr);
    r.qasm = "OPENQASM 2.0;\nqreg q[2];\n";

    const std::string line = format_response(r);
    std::vector<std::pair<std::string, JsonValue>> fields;
    std::string error;
    ASSERT_TRUE(parse_flat_json(line, fields, error))
        << line << ": " << error;

    ASSERT_NE(find(fields, "v"), nullptr);
    EXPECT_EQ(find(fields, "v")->str, kProtocolVersion);
    EXPECT_EQ(find(fields, "id")->str, r.id);
    EXPECT_TRUE(find(fields, "ok")->boolean);
    EXPECT_EQ(find(fields, "status")->str, "ok");
    EXPECT_EQ(find(fields, "memo")->str, "hit");
    EXPECT_EQ(find(fields, "gates")->num, 61.0);
    EXPECT_EQ(find(fields, "timesteps")->num, 17.0);
    EXPECT_EQ(find(fields, "swaps")->num, 4.0);
    EXPECT_EQ(find(fields, "qasm")->str, r.qasm);
    EXPECT_EQ(find(fields, "error"), nullptr) << "error key on ok";
    const JsonValue *passes = find(fields, "passes");
    ASSERT_NE(passes, nullptr);
    EXPECT_EQ(passes->kind, JsonValue::Kind::Raw);
    EXPECT_NE(passes->str.find("\"pass\":\"route\""),
              std::string::npos);
    EXPECT_NE(passes->str.find("\"attempts\":2"), std::string::npos);
}

TEST(ServeProtocolTest, FailureResponseCarriesErrorAndNoStats)
{
    Response r;
    r.id = "x";
    r.ok = false;
    r.status = "overloaded";
    r.error = "queue full (64 in flight)";
    const std::string line = format_response(r);
    std::vector<std::pair<std::string, JsonValue>> fields;
    std::string error;
    ASSERT_TRUE(parse_flat_json(line, fields, error)) << error;
    EXPECT_FALSE(find(fields, "ok")->boolean);
    EXPECT_EQ(find(fields, "error")->str, r.error);
    EXPECT_EQ(find(fields, "gates"), nullptr);
    EXPECT_EQ(find(fields, "qasm"), nullptr);
}

} // namespace
} // namespace naq::serve
