#include "opt/peephole.h"

#include <gtest/gtest.h>
#include <numbers>

#include "benchmarks/benchmarks.h"
#include "sim/statevector.h"
#include "util/rng.h"

namespace naq {
namespace {

void
expect_equivalent(const Circuit &a, const Circuit &b)
{
    ASSERT_EQ(a.num_qubits(), b.num_qubits());
    ASSERT_LE(a.num_qubits(), 12u);
    // Random product input distinguishes unitaries with overwhelming
    // probability; check several.
    Rng rng(99);
    for (int trial = 0; trial < 4; ++trial) {
        Circuit prep(a.num_qubits());
        for (QubitId q = 0; q < a.num_qubits(); ++q) {
            prep.add(Gate::ry(q, rng.uniform() * 3.0));
            prep.add(Gate::rz(q, rng.uniform() * 3.0));
        }
        StateVector sa(a.num_qubits()), sb(b.num_qubits());
        sa.apply(prep);
        sb.apply(prep);
        sa.apply(a);
        sb.apply(b);
        ASSERT_GT(sa.fidelity(sb), 1.0 - 1e-9);
    }
}

TEST(PeepholeTest, CancelsAdjacentSelfInversePairs)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::h(0));
    c.add(Gate::cx(0, 1));
    c.add(Gate::cx(0, 1));
    PeepholeStats stats;
    const Circuit out = peephole_optimize(c, &stats);
    EXPECT_EQ(out.size(), 0u);
    EXPECT_EQ(stats.cancelled_pairs, 2u);
}

TEST(PeepholeTest, KeepsNonAdjacentPairs)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::cx(0, 1)); // Touches qubit 0: blocks the H pair.
    c.add(Gate::h(0));
    const Circuit out = peephole_optimize(c);
    EXPECT_EQ(out.size(), 3u);
}

TEST(PeepholeTest, CancelsThroughUnrelatedQubits)
{
    Circuit c(3);
    c.add(Gate::x(0));
    c.add(Gate::h(2)); // Disjoint qubit: no barrier to cancellation.
    c.add(Gate::x(0));
    const Circuit out = peephole_optimize(c);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, GateKind::H);
}

TEST(PeepholeTest, CxDirectionMatters)
{
    Circuit c(2);
    c.add(Gate::cx(0, 1));
    c.add(Gate::cx(1, 0)); // Reversed: must NOT cancel.
    const Circuit out = peephole_optimize(c);
    EXPECT_EQ(out.size(), 2u);
}

TEST(PeepholeTest, SymmetricGatesCancelInAnyOrder)
{
    Circuit c(3);
    c.add(Gate::cz(0, 1));
    c.add(Gate::cz(1, 0));
    c.add(Gate::swap(1, 2));
    c.add(Gate::swap(2, 1));
    c.add(Gate::ccz(0, 1, 2));
    c.add(Gate::ccz(2, 0, 1));
    const Circuit out = peephole_optimize(c);
    EXPECT_EQ(out.size(), 0u);
}

TEST(PeepholeTest, ToffoliControlsSymmetricTargetNot)
{
    Circuit cancels(3);
    cancels.add(Gate::ccx(0, 1, 2));
    cancels.add(Gate::ccx(1, 0, 2)); // Swapped controls: cancels.
    EXPECT_EQ(peephole_optimize(cancels).size(), 0u);

    Circuit keeps(3);
    keeps.add(Gate::ccx(0, 1, 2));
    keeps.add(Gate::ccx(0, 2, 1)); // Different target: kept.
    EXPECT_EQ(peephole_optimize(keeps).size(), 2u);
}

TEST(PeepholeTest, InverseKindPairsCancel)
{
    Circuit c(1);
    c.add(Gate::s(0));
    c.add(Gate::sdg(0));
    c.add(Gate::tdg(0));
    c.add(Gate::t(0));
    EXPECT_EQ(peephole_optimize(c).size(), 0u);
}

TEST(PeepholeTest, SameKindSNotCancelled)
{
    Circuit c(1);
    c.add(Gate::s(0));
    c.add(Gate::s(0)); // S^2 = Z, not identity.
    EXPECT_EQ(peephole_optimize(c).size(), 2u);
}

TEST(PeepholeTest, RotationsFuse)
{
    Circuit c(1);
    c.add(Gate::rz(0, 0.3));
    c.add(Gate::rz(0, 0.4));
    PeepholeStats stats;
    const Circuit out = peephole_optimize(c, &stats);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0].param, 0.7, 1e-12);
    EXPECT_EQ(stats.fused_rotations, 1u);
}

TEST(PeepholeTest, OppositeRotationsVanish)
{
    Circuit c(2);
    c.add(Gate::rx(0, 1.1));
    c.add(Gate::rx(0, -1.1));
    c.add(Gate::cphase(0, 1, 0.5));
    c.add(Gate::cphase(1, 0, -0.5)); // Symmetric operands.
    EXPECT_EQ(peephole_optimize(c).size(), 0u);
}

TEST(PeepholeTest, ZeroRotationsAndIdentitiesDropped)
{
    Circuit c(1);
    c.add(Gate::rz(0, 0.0));
    c.add(Gate::i(0));
    c.add(Gate::rz(0, 2.0 * std::numbers::pi)); // = identity (phase).
    PeepholeStats stats;
    EXPECT_EQ(peephole_optimize(c, &stats).size(), 0u);
    EXPECT_EQ(stats.dropped_identity, 3u);
}

TEST(PeepholeTest, MeasureBlocksOptimization)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::measure(0));
    c.add(Gate::h(0));
    const Circuit out = peephole_optimize(c);
    EXPECT_EQ(out.counts().total, 2u);
    EXPECT_EQ(out.counts().measurements, 1u);
}

TEST(PeepholeTest, BarrierBlocksOptimization)
{
    Circuit c(2);
    c.add(Gate::x(0));
    c.add(Gate::barrier({0, 1}));
    c.add(Gate::x(0));
    EXPECT_EQ(peephole_optimize(c).counts().total, 2u);
}

TEST(PeepholeTest, CascadingCancellationNeedsFixpoint)
{
    // H X X H: inner pair cancels, exposing the outer pair.
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::x(0));
    c.add(Gate::x(0));
    c.add(Gate::h(0));
    PeepholeStats stats;
    EXPECT_EQ(peephole_optimize(c, &stats).size(), 0u);
    EXPECT_EQ(stats.cancelled_pairs, 2u);
}

TEST(PeepholeTest, PreservesSemanticsOnRandomCircuit)
{
    Rng rng(5);
    Circuit c(5);
    for (int i = 0; i < 120; ++i) {
        const QubitId a = QubitId(rng.uniform_int(5));
        QubitId b = QubitId(rng.uniform_int(5));
        if (b == a)
            b = (b + 1) % 5;
        switch (rng.uniform_int(7)) {
          case 0: c.add(Gate::h(a)); break;
          case 1: c.add(Gate::x(a)); break;
          case 2: c.add(Gate::rz(a, rng.uniform() * 2 - 1)); break;
          case 3: c.add(Gate::cx(a, b)); break;
          case 4: c.add(Gate::cz(a, b)); break;
          case 5: c.add(Gate::swap(a, b)); break;
          case 6: c.add(Gate::s(a)); break;
        }
    }
    const Circuit out = peephole_optimize(c);
    EXPECT_LE(out.size(), c.size());
    expect_equivalent(c, out);
}

TEST(PeepholeTest, BenchmarksAlreadyLean)
{
    // The generators should not contain trivially removable gates
    // (QFT adder angles are all nonzero, etc.).
    for (benchmarks::Kind kind : benchmarks::all_kinds()) {
        const Circuit c = benchmarks::make(kind, 20, 3);
        EXPECT_EQ(peephole_optimize(c).counts().total,
                  c.counts().total)
            << benchmarks::kind_name(kind);
    }
}

TEST(PeepholeTest, IdempotentOnOptimizedOutput)
{
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::cx(0, 1));
    c.add(Gate::cx(0, 1));
    c.add(Gate::rz(1, 0.4));
    const Circuit once = peephole_optimize(c);
    const Circuit twice = peephole_optimize(once);
    EXPECT_EQ(once.gates(), twice.gates());
}

} // namespace
} // namespace naq
