#include "noise/monte_carlo.h"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "core/compiler.h"

namespace naq {
namespace {

CompiledStats
make_stats(size_t n1, size_t n2, size_t n3, size_t depth, size_t qubits)
{
    CompiledStats s;
    s.n1 = n1;
    s.n2 = n2;
    s.n3 = n3;
    s.depth = depth;
    s.qubits_used = qubits;
    return s;
}

TEST(MonteCarloTest, PerfectModelAlwaysSucceeds)
{
    ErrorModel perfect = ErrorModel::neutral_atom(0.0);
    perfect.t1_ground = 1e18;
    perfect.t2_ground = 1e18;
    Rng rng(1);
    const MonteCarloResult r = monte_carlo_success(
        make_stats(10, 10, 10, 100, 5), perfect, 500, rng);
    EXPECT_EQ(r.successes, 500u);
    EXPECT_DOUBLE_EQ(r.rate(), 1.0);
    EXPECT_DOUBLE_EQ(r.std_error(), 0.0);
}

TEST(MonteCarloTest, HopelessModelAlwaysFails)
{
    ErrorModel broken = ErrorModel::neutral_atom(1.0);
    Rng rng(2);
    const MonteCarloResult r = monte_carlo_success(
        make_stats(0, 5, 0, 10, 2), broken, 200, rng);
    EXPECT_EQ(r.successes, 0u);
}

TEST(MonteCarloTest, AgreesWithClosedFormWithinError)
{
    const CompiledStats stats = make_stats(40, 120, 20, 300, 30);
    for (double p2 : {1e-4, 1e-3, 5e-3}) {
        const ErrorModel model = ErrorModel::neutral_atom(p2);
        const double analytic = success_probability(stats, model);
        Rng rng(42);
        const MonteCarloResult mc =
            monte_carlo_success(stats, model, 20000, rng);
        EXPECT_NEAR(mc.rate(), analytic,
                    5.0 * mc.std_error() + 1e-3)
            << "p2 = " << p2;
    }
}

TEST(MonteCarloTest, AgreesOnRealCompiledProgram)
{
    GridTopology topo(10, 10);
    const CompileResult res =
        compile(benchmarks::cuccaro(30), topo,
                CompilerOptions::neutral_atom(3.0));
    ASSERT_TRUE(res.success);
    const ErrorModel model = ErrorModel::neutral_atom(2e-3);
    const double analytic = success_probability(res.stats(), model);
    Rng rng(7);
    const MonteCarloResult mc =
        monte_carlo_success(res.stats(), model, 20000, rng);
    EXPECT_NEAR(mc.rate(), analytic, 5.0 * mc.std_error() + 1e-3);
}

TEST(MonteCarloTest, DeterministicBySeed)
{
    const CompiledStats stats = make_stats(10, 50, 5, 100, 10);
    const ErrorModel model = ErrorModel::neutral_atom(1e-2);
    Rng a(9), b(9), c(10);
    EXPECT_EQ(monte_carlo_success(stats, model, 2000, a).successes,
              monte_carlo_success(stats, model, 2000, b).successes);
    // A different seed should (overwhelmingly) differ.
    Rng a2(9);
    EXPECT_NE(monte_carlo_success(stats, model, 2000, a2).successes,
              monte_carlo_success(stats, model, 2000, c).successes);
}

TEST(MonteCarloTest, StdErrorShrinksWithTrials)
{
    const CompiledStats stats = make_stats(0, 100, 0, 100, 10);
    const ErrorModel model = ErrorModel::neutral_atom(3e-3);
    Rng rng(3);
    const MonteCarloResult small =
        monte_carlo_success(stats, model, 500, rng);
    const MonteCarloResult big =
        monte_carlo_success(stats, model, 50000, rng);
    EXPECT_GT(small.std_error(), big.std_error());
}

TEST(MonteCarloTest, ZeroTrials)
{
    Rng rng(1);
    const MonteCarloResult r = monte_carlo_success(
        make_stats(1, 1, 1, 1, 1), ErrorModel::neutral_atom(1e-3), 0,
        rng);
    EXPECT_EQ(r.rate(), 0.0);
    EXPECT_EQ(r.std_error(), 0.0);
}

} // namespace
} // namespace naq
