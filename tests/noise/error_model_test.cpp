#include "noise/error_model.h"

#include <cmath>
#include <gtest/gtest.h>

namespace naq {
namespace {

CompiledStats
make_stats(size_t n1, size_t n2, size_t n3, size_t depth, size_t qubits)
{
    CompiledStats s;
    s.n1 = n1;
    s.n2 = n2;
    s.n3 = n3;
    s.depth = depth;
    s.qubits_used = qubits;
    return s;
}

TEST(ErrorModelTest, PresetRelations)
{
    const ErrorModel na = ErrorModel::neutral_atom(1e-3);
    EXPECT_DOUBLE_EQ(na.p1, 1e-4);
    EXPECT_DOUBLE_EQ(na.p3, kToffoliErrorFactor * 1e-3);
    const ErrorModel sc = ErrorModel::superconducting(1e-3);
    EXPECT_LT(sc.gate_time, na.gate_time);
    // SC coherence is folded into the calibrated gate errors (no
    // separate decay term), NA charges ground-state decay explicitly.
    EXPECT_GT(sc.t1_ground, 1e6);
    EXPECT_LT(na.t1_ground, 1e3);
}

TEST(ErrorModelTest, PerfectGatesNoDecoherence)
{
    ErrorModel perfect = ErrorModel::neutral_atom(0.0);
    perfect.t1_ground = 1e18;
    perfect.t2_ground = 1e18;
    EXPECT_NEAR(success_probability(make_stats(5, 5, 5, 10, 4), perfect),
                1.0, 1e-12);
}

TEST(ErrorModelTest, GateErrorProduct)
{
    ErrorModel m = ErrorModel::neutral_atom(1e-2);
    m.t1_ground = 1e18;
    m.t2_ground = 1e18;
    const double p =
        success_probability(make_stats(10, 20, 3, 100, 5), m);
    const double expected = std::pow(1 - 1e-3, 10) *
                            std::pow(1 - 1e-2, 20) *
                            std::pow(1 - 3e-2, 3);
    EXPECT_NEAR(p, expected, 1e-12);
}

TEST(ErrorModelTest, CoherenceDecayWithDepth)
{
    ErrorModel m = ErrorModel::neutral_atom(0.0);
    m.t1_ground = 1.0;
    m.t2_ground = 1.0;
    m.gate_time = 0.1;
    // One qubit idle for 10 steps: exp(-1 - 1) = e^-2.
    EXPECT_NEAR(success_probability(make_stats(0, 0, 0, 10, 1), m),
                std::exp(-2.0), 1e-12);
    // Two qubits: squared.
    EXPECT_NEAR(success_probability(make_stats(0, 0, 0, 10, 2), m),
                std::exp(-4.0), 1e-12);
}

TEST(ErrorModelTest, MonotoneInErrorRate)
{
    const CompiledStats stats = make_stats(50, 100, 10, 500, 30);
    double prev = 1.1;
    for (double p2 : {1e-5, 1e-4, 1e-3, 1e-2, 1e-1}) {
        const double p =
            success_probability(stats, ErrorModel::neutral_atom(p2));
        EXPECT_LT(p, prev);
        prev = p;
    }
}

TEST(ErrorModelTest, MonotoneInGateCount)
{
    const ErrorModel m = ErrorModel::neutral_atom(1e-3);
    EXPECT_GT(success_probability(make_stats(0, 50, 0, 50, 10), m),
              success_probability(make_stats(0, 100, 0, 50, 10), m));
}

TEST(ErrorModelTest, LargestRunnablePicksBiggestPassing)
{
    std::vector<std::pair<size_t, CompiledStats>> runs;
    runs.emplace_back(10, make_stats(10, 20, 0, 30, 10));
    runs.emplace_back(50, make_stats(50, 200, 0, 150, 50));
    runs.emplace_back(100, make_stats(100, 900, 0, 600, 100));
    const ErrorModel good = ErrorModel::neutral_atom(1e-5);
    EXPECT_EQ(largest_runnable(runs, good, 2.0 / 3.0), 100u);
    const ErrorModel mid = ErrorModel::neutral_atom(1.5e-3);
    EXPECT_EQ(largest_runnable(runs, mid, 2.0 / 3.0), 50u);
    const ErrorModel bad = ErrorModel::neutral_atom(0.3);
    EXPECT_EQ(largest_runnable(runs, bad, 2.0 / 3.0), 0u);
}

TEST(ErrorModelTest, TunedP2HitsTarget)
{
    const CompiledStats stats = make_stats(40, 120, 25, 200, 30);
    const double p2 = tune_p2_for_success(stats, 0.6);
    ASSERT_GT(p2, 0.0);
    EXPECT_NEAR(
        success_probability(stats, ErrorModel::neutral_atom(p2)), 0.6,
        1e-6);
}

TEST(ErrorModelTest, TuneReturnsZeroWhenUnreachable)
{
    // Enormous depth: coherence alone kills the target.
    CompiledStats stats = make_stats(0, 0, 0, 1000000000, 100);
    stats.depth = 1000000000;
    const double p2 = tune_p2_for_success(stats, 0.99);
    EXPECT_EQ(p2, 0.0);
}

TEST(ErrorModelTest, PaperBudgetExample)
{
    // Paper Fig. 12: with a 96.5%-fidelity two-qubit gate, six SWAPs
    // (18 CX) halve the success rate.
    const double per_gate = 0.965;
    EXPECT_GT(std::pow(per_gate, 18), 0.5);
    EXPECT_LT(std::pow(per_gate, 21), 0.5);
}

} // namespace
} // namespace naq
