/**
 * @file
 * QASM round-trip / differential suite.
 *
 * Three invariants, checked over the checked-in corpus
 * (tests/qasm/corpus/*.qasm) and the registry benchmarks:
 *
 *  1. Parse -> emit -> parse is a fixpoint: re-parsing the emitted
 *     text reproduces the exact gate sequence (kinds, operand qubit
 *     indices, parameters), and a second emission is byte-identical
 *     to the first.
 *  2. Every registry benchmark at several sizes survives
 *     `read_qasm(write_qasm(c))` with gate-for-gate equality.
 *  3. Compiled schedules re-emit to parseable QASM whose gate counts
 *     match the schedule (differential check against the compiler).
 */
#include "qasm/qasm.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "core/compiler.h"
#include "topology/grid.h"
#include "util/glob.h"

namespace naq {
namespace {

std::string
corpus_dir()
{
    return std::string(NAQ_SOURCE_DIR) + "/tests/qasm/corpus";
}

std::vector<std::string>
corpus_files()
{
    return glob_files(corpus_dir() + "/*.qasm");
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot open corpus file " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** "corpus/bell.qasm" -> "bell" (gtest-safe parameter name). */
std::string
test_name(const ::testing::TestParamInfo<std::string> &info)
{
    const std::string &path = info.param;
    const size_t slash = path.find_last_of('/');
    std::string stem =
        path.substr(slash == std::string::npos ? 0 : slash + 1);
    if (const size_t dot = stem.find('.'); dot != std::string::npos)
        stem = stem.substr(0, dot);
    for (char &c : stem)
        if (!std::isalnum((unsigned char)c))
            c = '_';
    return stem;
}

TEST(QasmCorpus, IsNonEmptyAndSorted)
{
    const std::vector<std::string> files = corpus_files();
    ASSERT_GE(files.size(), 5u)
        << "the checked-in corpus shrank unexpectedly";
    for (size_t i = 1; i < files.size(); ++i)
        EXPECT_LT(files[i - 1], files[i]);
}

class CorpusRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CorpusRoundTrip, ParseEmitParseIsFixpoint)
{
    const Circuit first = read_qasm(slurp(GetParam()));
    const std::string emitted = write_qasm(first);
    const Circuit second = read_qasm(emitted);

    ASSERT_EQ(second.num_qubits(), first.num_qubits());
    ASSERT_EQ(second.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(second[i], first[i])
            << "gate " << i << " diverged: " << first[i].to_string()
            << " vs " << second[i].to_string();
    }
    // Emission is idempotent: the second emit is byte-identical.
    EXPECT_EQ(write_qasm(second), emitted);
}

TEST_P(CorpusRoundTrip, CompileThenEmitIsValidQasm)
{
    const Circuit logical = read_qasm(slurp(GetParam()));
    GridTopology topo(10, 10);
    const CompileResult res =
        compile(logical, topo, CompilerOptions::neutral_atom(2.0));
    ASSERT_TRUE(res.success) << res.failure_reason;

    const Circuit device_circuit = res.compiled.to_circuit();
    const std::string emitted = write_qasm(device_circuit);
    const Circuit reparsed = read_qasm(emitted);
    EXPECT_EQ(reparsed.counts().total, device_circuit.counts().total);
    EXPECT_EQ(reparsed.counts().swaps, device_circuit.counts().swaps);
    EXPECT_EQ(reparsed.counts().measurements,
              device_circuit.counts().measurements);
    EXPECT_EQ(reparsed.depth(), device_circuit.depth());
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusRoundTrip,
                         ::testing::ValuesIn(corpus_files()),
                         test_name);

class BenchmarkRoundTrip
    : public ::testing::TestWithParam<benchmarks::Kind>
{
};

TEST_P(BenchmarkRoundTrip, GateSequenceSurvivesAtSeveralSizes)
{
    for (const size_t size : {6u, 12u, 17u}) {
        SCOPED_TRACE("size " + std::to_string(size));
        const Circuit original = benchmarks::make(GetParam(), size, 3);
        const Circuit reparsed = read_qasm(write_qasm(original));
        ASSERT_EQ(reparsed.num_qubits(), original.num_qubits());
        ASSERT_EQ(reparsed.size(), original.size());
        for (size_t i = 0; i < original.size(); ++i) {
            ASSERT_EQ(reparsed[i], original[i])
                << "gate " << i << ": " << original[i].to_string()
                << " vs " << reparsed[i].to_string();
        }
    }
}

TEST_P(BenchmarkRoundTrip, CompiledScheduleReEmitsParseably)
{
    const Circuit logical = benchmarks::make(GetParam(), 10, 3);
    GridTopology topo(6, 6);
    const CompileResult res =
        compile(logical, topo, CompilerOptions::neutral_atom(2.0));
    ASSERT_TRUE(res.success) << res.failure_reason;
    const Circuit device_circuit = res.compiled.to_circuit();
    const Circuit reparsed = read_qasm(write_qasm(device_circuit));
    EXPECT_EQ(reparsed.counts().total, device_circuit.counts().total);
    EXPECT_EQ(reparsed.counts().swaps, device_circuit.counts().swaps);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, BenchmarkRoundTrip,
    ::testing::ValuesIn(benchmarks::all_kinds()),
    [](const ::testing::TestParamInfo<benchmarks::Kind> &info) {
        std::string name(benchmarks::kind_name(info.param));
        for (char &c : name)
            if (!std::isalnum((unsigned char)c))
                c = '_';
        return name;
    });

} // namespace
} // namespace naq
