// Whole-register broadcast forms: bare-register gates, mixed cx, measure.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
qreg r[3];
creg c[3];
h q;
x r;
cx q, r;
cz q[0], r[0];
rz(pi/4) q;
cx q[1], r;
measure r -> c;
