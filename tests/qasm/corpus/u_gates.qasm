// Single-qubit u-family and sqrt(X) gates (u2/u3 lower to rz·ry·rz).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
u1(pi/8) q[0];
u2(0,pi) q[0];
u3(pi/2,0,pi) q[1];
U(0.3,0.2,0.1) q[2];
sx q[0];
sxdg q[1];
u3(-pi/7,pi/5,2*pi/3) q[2];
measure q -> c;
