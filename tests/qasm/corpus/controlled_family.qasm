// Controlled-H / controlled-Y and Fredkin via standard identities.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
ch q[0], q[1];
cy q[1], q[2];
cswap q[0], q[1], q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
