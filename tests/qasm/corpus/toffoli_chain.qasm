// Toffoli AND-chain (carry-style) with uncomputation.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
creg c[1];
x q[0];
x q[1];
ccx q[0], q[1], q[3];
ccx q[2], q[3], q[4];
cx q[4], q[5];
ccx q[2], q[3], q[4]; // uncompute
ccx q[0], q[1], q[3]; // uncompute
measure q[5] -> c[0];
