// Controlled rotations lowered onto rz/ry + cx sandwiches.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
h q[2];
crz(pi/3) q[0], q[1];
crx(0.4) q[1], q[2];
cry(-pi/5) q[2], q[3];
cu1(pi/7) q[0], q[3];
cu3(pi/3,0.25,-0.5) q[3], q[0];
rzz(pi/9) q[1], q[3];
