// User gate macros: cuccaro majority/unmajority, nested + parameterized.
OPENQASM 2.0;
include "qelib1.inc";
gate majority a, b, c { cx c, b; cx c, a; ccx a, b, c; }
gate unmaj a, b, c { ccx a, b, c; cx c, a; cx a, b; }
gate rot(theta) q { rz(theta/2) q; ry(theta) q; rz(-theta/2) q; }
gate rot2(alpha, beta) q { rot(alpha + beta) q; rot(alpha - beta) q; }
qreg a[3];
qreg b[2];
creg c[3];
x a[0];
x b[1];
majority a[0], b[0], a[1];
rot(pi/6) b[1];
rot2(pi/8, -pi/16) a[2];
unmaj a[0], b[0], a[1];
barrier a;
measure a -> c;
