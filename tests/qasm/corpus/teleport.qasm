// Coherent teleportation across three named registers (exercises
// multi-register concatenation; corrections applied unitarily).
OPENQASM 2.0;
include "qelib1.inc";
qreg msg[1];
qreg alice[1];
qreg bob[1];
creg c[2];
ry(0.3) msg[0];
rz(pi/5) msg[0];
h alice[0];
cx alice[0], bob[0];
cx msg[0], alice[0];
h msg[0];
cx alice[0], bob[0];
cz msg[0], bob[0];
measure msg[0] -> c[0];
measure alice[0] -> c[1];
