// Exercises the strict register-index parse: 'junk' is not an index.
OPENQASM 2.0;
qreg q[2];
cx q[0], q[junk];
