// Parses fine; 200 qubits cannot seat on the default 10x10 device.
OPENQASM 2.0;
qreg q[200];
h q[0];
