/**
 * @file
 * Differential verification of the QASM frontend's extended gate
 * coverage: every gate the parser lowers onto native IR kinds
 * (u1/u2/u3, sx/sxdg, cy/ch, crx/cry/crz, cu1/cu3, rzz, cswap) is
 * checked against its textbook matrix on the statevector simulator,
 * up to global phase, from a non-trivial product state. Macro
 * expansion and whole-register broadcast are checked gate-for-gate
 * against hand-inlined equivalents, and every construct must survive
 * parse→emit→parse and compile on the default device.
 */
#include "qasm/qasm.h"

#include <cmath>
#include <complex>
#include <gtest/gtest.h>
#include <numbers>
#include <vector>

#include "core/compiler.h"
#include "sim/statevector.h"

namespace naq {
namespace {

using cplx = std::complex<double>;
constexpr double kPi = std::numbers::pi;

/**
 * Apply a k-qubit unitary `u` (dimension 2^k, row-major, where bit j
 * of a sub-block index is qubit `qs[j]` — little endian, matching
 * StateVector) to a full amplitude vector.
 */
std::vector<cplx>
apply_reference(const std::vector<cplx> &amps,
                const std::vector<cplx> &u,
                const std::vector<unsigned> &qs)
{
    const size_t k = qs.size();
    const size_t dim = size_t(1) << k;
    EXPECT_EQ(u.size(), dim * dim);
    std::vector<cplx> out(amps.size());
    for (size_t idx = 0; idx < amps.size(); ++idx) {
        // Sub-block coordinates of this basis state.
        size_t row = 0;
        for (size_t j = 0; j < k; ++j)
            row |= ((idx >> qs[j]) & 1u) << j;
        cplx acc = 0.0;
        for (size_t col = 0; col < dim; ++col) {
            // Source index: idx with the qs bits replaced by col.
            size_t src = idx;
            for (size_t j = 0; j < k; ++j) {
                src &= ~(size_t(1) << qs[j]);
                src |= ((col >> j) & 1u) << qs[j];
            }
            acc += u[row * dim + col] * amps[src];
        }
        out[idx] = acc;
    }
    return out;
}

/** |<a|b>|^2 for raw amplitude vectors. */
double
overlap(const std::vector<cplx> &a, const std::vector<cplx> &b)
{
    cplx dot = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        dot += std::conj(a[i]) * b[i];
    return std::norm(dot);
}

/** Textbook u3(θ,φ,λ) matrix (OpenQASM convention). */
std::vector<cplx>
u3_matrix(double theta, double phi, double lambda)
{
    const cplx i(0.0, 1.0);
    const double c = std::cos(theta / 2), s = std::sin(theta / 2);
    return {c, -std::exp(i * lambda) * s, std::exp(i * phi) * s,
            std::exp(i * (phi + lambda)) * c};
}

/** Controlled-U over (control=qubit 0 of the block, target=qubit 1). */
std::vector<cplx>
controlled(const std::vector<cplx> &u)
{
    // Block bit 0 is the control: basis order |tc> with c the low bit,
    // so rows/cols {1,3} form the target block when control = 1.
    std::vector<cplx> m(16, 0.0);
    m[0 * 4 + 0] = 1.0;
    m[2 * 4 + 2] = 1.0;
    m[1 * 4 + 1] = u[0];
    m[1 * 4 + 3] = u[1];
    m[3 * 4 + 1] = u[2];
    m[3 * 4 + 3] = u[3];
    return m;
}

struct GateCase
{
    const char *name;       ///< gtest parameter name.
    const char *stmt;       ///< QASM statement over q[0..n).
    size_t qubits;          ///< Register width.
    std::vector<cplx> u;    ///< Reference matrix.
    std::vector<unsigned> targets; ///< Block qubits, low bit first.
};

std::vector<GateCase>
gate_cases()
{
    const cplx i(0.0, 1.0);
    const double r2 = 1.0 / std::sqrt(2.0);
    std::vector<GateCase> cases;
    cases.push_back({"U1", "u1(0.37) q[0];", 1,
                     {1.0, 0.0, 0.0, std::exp(i * 0.37)}, {0}});
    cases.push_back({"U2", "u2(0.3,-0.8) q[0];", 1,
                     u3_matrix(kPi / 2, 0.3, -0.8), {0}});
    cases.push_back({"U3", "u3(1.1,0.4,-0.6) q[0];", 1,
                     u3_matrix(1.1, 0.4, -0.6), {0}});
    cases.push_back({"CapitalU", "U(1.1,0.4,-0.6) q[0];", 1,
                     u3_matrix(1.1, 0.4, -0.6), {0}});
    cases.push_back({"Sx", "sx q[0];", 1,
                     {0.5 * cplx(1, 1), 0.5 * cplx(1, -1),
                      0.5 * cplx(1, -1), 0.5 * cplx(1, 1)},
                     {0}});
    cases.push_back({"Sxdg", "sxdg q[0];", 1,
                     {0.5 * cplx(1, -1), 0.5 * cplx(1, 1),
                      0.5 * cplx(1, 1), 0.5 * cplx(1, -1)},
                     {0}});
    // Controlled family: control q[0], target q[1].
    cases.push_back({"Cy", "cy q[0], q[1];", 2,
                     controlled({0.0, -i, i, 0.0}), {0, 1}});
    cases.push_back({"Ch", "ch q[0], q[1];", 2,
                     controlled({r2, r2, r2, -r2}), {0, 1}});
    cases.push_back(
        {"Crx", "crx(0.9) q[0], q[1];", 2,
         controlled({std::cos(0.45), -i * std::sin(0.45),
                     -i * std::sin(0.45), std::cos(0.45)}),
         {0, 1}});
    cases.push_back(
        {"Cry", "cry(0.9) q[0], q[1];", 2,
         controlled({std::cos(0.45), -std::sin(0.45), std::sin(0.45),
                     std::cos(0.45)}),
         {0, 1}});
    cases.push_back(
        {"Crz", "crz(0.9) q[0], q[1];", 2,
         controlled({std::exp(-i * 0.45), 0.0, 0.0,
                     std::exp(i * 0.45)}),
         {0, 1}});
    cases.push_back({"Cu3", "cu3(1.1,0.4,-0.6) q[0], q[1];", 2,
                     controlled(u3_matrix(1.1, 0.4, -0.6)), {0, 1}});
    cases.push_back(
        {"Rzz", "rzz(0.7) q[0], q[1];", 2,
         {std::exp(-i * 0.35), 0.0, 0.0, 0.0,
          0.0, std::exp(i * 0.35), 0.0, 0.0,
          0.0, 0.0, std::exp(i * 0.35), 0.0,
          0.0, 0.0, 0.0, std::exp(-i * 0.35)},
         {0, 1}});
    // cswap over (control q[0]; swapped q[1], q[2]): block bit 0 is
    // the control, bits 1/2 the swapped pair.
    std::vector<cplx> fredkin(64, 0.0);
    for (size_t b = 0; b < 8; ++b) {
        size_t target = b;
        if (b & 1) {
            // Control set: exchange bits 1 and 2.
            const size_t b1 = (b >> 1) & 1, b2 = (b >> 2) & 1;
            target = (b & 1) | (b2 << 1) | (b1 << 2);
        }
        fredkin[target * 8 + b] = 1.0;
    }
    cases.push_back({"Cswap", "cswap q[0], q[1], q[2];", 3,
                     std::move(fredkin), {0, 1, 2}});
    return cases;
}

class ExtendedGate : public ::testing::TestWithParam<GateCase>
{
};

TEST_P(ExtendedGate, MatchesTextbookMatrixUpToGlobalPhase)
{
    const GateCase &c = GetParam();

    // Non-trivial product state so every matrix entry matters.
    Circuit prep(c.qubits);
    for (QubitId q = 0; q < c.qubits; ++q) {
        prep.add(Gate::ry(q, 0.4 + 0.2 * q));
        prep.add(Gate::rz(q, 0.15 + 0.1 * q));
    }
    StateVector sv(c.qubits);
    sv.apply(prep);
    std::vector<cplx> amps(sv.dimension());
    for (uint64_t k = 0; k < sv.dimension(); ++k)
        amps[k] = sv.amplitude(k);

    const std::string source = "OPENQASM 2.0;\nqreg q[" +
                               std::to_string(c.qubits) + "];\n" +
                               c.stmt + "\n";
    const Circuit parsed = read_qasm(source);
    sv.apply(parsed);
    std::vector<cplx> got(sv.dimension());
    for (uint64_t k = 0; k < sv.dimension(); ++k)
        got[k] = sv.amplitude(k);

    const std::vector<cplx> want =
        apply_reference(amps, c.u, c.targets);
    EXPECT_GT(overlap(want, got), 1.0 - 1e-9)
        << c.stmt << " diverges from its reference matrix";
}

TEST_P(ExtendedGate, SurvivesRoundTripAndCompiles)
{
    const GateCase &c = GetParam();
    const std::string source = "OPENQASM 2.0;\nqreg q[" +
                               std::to_string(c.qubits) + "];\n" +
                               c.stmt + "\n";
    const Circuit parsed = read_qasm(source);

    // Lowered output is pure native kinds: emit→parse is a fixpoint.
    const Circuit reparsed = read_qasm(write_qasm(parsed));
    ASSERT_EQ(reparsed.size(), parsed.size());
    for (size_t k = 0; k < parsed.size(); ++k)
        EXPECT_EQ(reparsed[k], parsed[k]) << "gate " << k;

    // And the lowering compiles on the default device.
    GridTopology topo(10, 10);
    const CompileResult res =
        compile(parsed, topo, CompilerOptions::neutral_atom(2.0));
    EXPECT_TRUE(res.success) << res.report.message;
}

INSTANTIATE_TEST_SUITE_P(
    Table, ExtendedGate, ::testing::ValuesIn(gate_cases()),
    [](const ::testing::TestParamInfo<GateCase> &info) {
        return std::string(info.param.name);
    });

// ---------------------------------------------------------------- Macros

TEST(QasmMacroTest, ExpandsInlineGateForGate)
{
    const Circuit expanded = read_qasm(
        "OPENQASM 2.0;\nqreg q[3];\n"
        "gate majority a, b, c { cx c, b; cx c, a; ccx a, b, c; }\n"
        "majority q[0], q[1], q[2];\n");
    const Circuit inlined = read_qasm(
        "OPENQASM 2.0;\nqreg q[3];\n"
        "cx q[2], q[1];\ncx q[2], q[0];\nccx q[0], q[1], q[2];\n");
    ASSERT_EQ(expanded.size(), inlined.size());
    for (size_t k = 0; k < inlined.size(); ++k)
        EXPECT_EQ(expanded[k], inlined[k]) << "gate " << k;
}

TEST(QasmMacroTest, ParameterizedAndNestedExpansion)
{
    QasmParseStats stats;
    const Circuit c = read_qasm(
        "OPENQASM 2.0;\nqreg q[1];\n"
        "gate rot(theta) q { rz(theta/2) q; ry(theta) q; }\n"
        "gate rot2(alpha, beta) q { rot(alpha + beta) q; }\n"
        "rot2(pi/4, pi/4) q[0];\n",
        &stats);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0].kind, GateKind::RZ);
    EXPECT_NEAR(c[0].param, kPi / 4, 1e-12);
    EXPECT_EQ(c[1].kind, GateKind::RY);
    EXPECT_NEAR(c[1].param, kPi / 2, 1e-12);
    EXPECT_EQ(stats.macros_defined, 2u);
    // rot2 expands once and pulls rot in with it.
    EXPECT_EQ(stats.macros_expanded, 2u);
}

TEST(QasmMacroTest, MacroBroadcastsOverWholeRegister)
{
    const Circuit c = read_qasm(
        "OPENQASM 2.0;\nqreg q[3];\n"
        "gate duo a { h a; t a; }\n"
        "duo q;\n");
    ASSERT_EQ(c.size(), 6u);
    for (QubitId i = 0; i < 3; ++i) {
        EXPECT_EQ(c[2 * i], Gate::h(i));
        EXPECT_EQ(c[2 * i + 1], Gate::t(i));
    }
}

TEST(QasmMacroTest, BarrierAllowedInBody)
{
    const Circuit c = read_qasm(
        "OPENQASM 2.0;\nqreg q[2];\n"
        "gate sync a, b { h a; barrier a, b; h b; }\n"
        "sync q[0], q[1];\n");
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c[1].kind, GateKind::Barrier);
    EXPECT_EQ(c[1].qubits, (std::vector<QubitId>{0, 1}));
}

// ------------------------------------------------------------- Broadcast

TEST(QasmBroadcastTest, SingleQubitGateOverRegister)
{
    QasmParseStats stats;
    const Circuit c = read_qasm(
        "OPENQASM 2.0;\nqreg q[4];\nh q;\n", &stats);
    ASSERT_EQ(c.size(), 4u);
    for (QubitId i = 0; i < 4; ++i)
        EXPECT_EQ(c[i], Gate::h(i));
    EXPECT_EQ(stats.broadcasts, 1u);
}

TEST(QasmBroadcastTest, TwoRegistersBroadcastPairwise)
{
    const Circuit c = read_qasm(
        "OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\ncx a, b;\n");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0], Gate::cx(0, 2));
    EXPECT_EQ(c[1], Gate::cx(1, 3));
}

TEST(QasmBroadcastTest, MixedIndexedAndWholeRegister)
{
    // An indexed operand pins that position while the register runs.
    const Circuit c = read_qasm(
        "OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\ncx a[0], b;\n");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0], Gate::cx(0, 2));
    EXPECT_EQ(c[1], Gate::cx(0, 3));
}

TEST(QasmBroadcastTest, MeasureWholeRegister)
{
    QasmParseStats stats;
    const Circuit c = read_qasm(
        "OPENQASM 2.0;\nqreg q[3];\ncreg c[3];\nmeasure q -> c;\n",
        &stats);
    ASSERT_EQ(c.size(), 3u);
    for (QubitId i = 0; i < 3; ++i)
        EXPECT_EQ(c[i], Gate::measure(i));
    EXPECT_EQ(stats.broadcasts, 1u);
}

TEST(QasmBroadcastTest, RotationBroadcastKeepsAngle)
{
    const Circuit c = read_qasm(
        "OPENQASM 2.0;\nqreg q[2];\nrz(pi/8) q;\n");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_NEAR(c[0].param, kPi / 8, 1e-12);
    EXPECT_NEAR(c[1].param, kPi / 8, 1e-12);
}

} // namespace
} // namespace naq
