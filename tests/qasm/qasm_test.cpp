#include "qasm/qasm.h"

#include <gtest/gtest.h>
#include <numbers>

#include "benchmarks/benchmarks.h"
#include "core/compiler.h"
#include "sim/statevector.h"

namespace naq {
namespace {

TEST(QasmWriteTest, HeaderAndRegisters)
{
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::measure(0));
    const std::string text = write_qasm(c);
    EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(text.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(text.find("creg c[1];"), std::string::npos);
    EXPECT_NE(text.find("h q[0];"), std::string::npos);
    EXPECT_NE(text.find("measure q[0] -> c[0];"), std::string::npos);
}

TEST(QasmWriteTest, NoCregWithoutMeasures)
{
    Circuit c(1);
    c.add(Gate::x(0));
    EXPECT_EQ(write_qasm(c).find("creg"), std::string::npos);
}

TEST(QasmWriteTest, CczEmittedViaIdentity)
{
    Circuit c(3);
    c.add(Gate::ccz(0, 1, 2));
    const std::string text = write_qasm(c);
    EXPECT_NE(text.find("ccx q[0], q[1], q[2];"), std::string::npos);
    EXPECT_EQ(text.find("ccz"), std::string::npos);
}

TEST(QasmWriteTest, WideMcxRejected)
{
    Circuit c(5);
    c.add(Gate::mcx({0, 1, 2}, 4));
    EXPECT_THROW(write_qasm(c), std::invalid_argument);
}

TEST(QasmReadTest, BasicProgram)
{
    const Circuit c = read_qasm(R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg c[2];
        h q[0];
        cx q[0], q[1];
        measure q[0] -> c[0];
        measure q[1] -> c[1];
    )");
    EXPECT_EQ(c.num_qubits(), 2u);
    EXPECT_EQ(c.counts().total, 2u);
    EXPECT_EQ(c.counts().measurements, 2u);
    EXPECT_EQ(c[0].kind, GateKind::H);
    EXPECT_EQ(c[1].kind, GateKind::CX);
}

TEST(QasmReadTest, AngleExpressions)
{
    const Circuit c = read_qasm(
        "OPENQASM 2.0; qreg q[1];"
        "rz(pi/2) q[0]; rx(-pi/4) q[0]; ry(2*pi) q[0];"
        "rz(0.25) q[0]; rz((1+1)/4) q[0];");
    EXPECT_NEAR(c[0].param, std::numbers::pi / 2, 1e-12);
    EXPECT_NEAR(c[1].param, -std::numbers::pi / 4, 1e-12);
    EXPECT_NEAR(c[2].param, 2 * std::numbers::pi, 1e-12);
    EXPECT_NEAR(c[3].param, 0.25, 1e-12);
    EXPECT_NEAR(c[4].param, 0.5, 1e-12);
}

TEST(QasmReadTest, MultipleRegistersConcatenate)
{
    const Circuit c = read_qasm(
        "OPENQASM 2.0; qreg a[2]; qreg b[3]; cx a[1], b[0];");
    EXPECT_EQ(c.num_qubits(), 5u);
    EXPECT_EQ(c[0].qubits, (std::vector<QubitId>{1, 2}));
}

TEST(QasmReadTest, BarrierWholeRegister)
{
    const Circuit c =
        read_qasm("OPENQASM 2.0; qreg q[3]; barrier q;");
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0].kind, GateKind::Barrier);
    EXPECT_EQ(c[0].qubits.size(), 3u);
}

TEST(QasmReadTest, CommentsIgnored)
{
    const Circuit c = read_qasm(
        "OPENQASM 2.0; // header\n"
        "qreg q[1]; // a register\n"
        "x q[0]; // flip\n");
    EXPECT_EQ(c.size(), 1u);
}

TEST(QasmReadTest, ErrorsCarryLineNumbers)
{
    try {
        read_qasm("OPENQASM 2.0;\nqreg q[1];\nbogus q[0];\n");
        FAIL() << "expected QasmError";
    } catch (const QasmError &e) {
        EXPECT_EQ(e.line(), 3u);
        EXPECT_NE(std::string(e.what()).find("bogus"),
                  std::string::npos);
    }
}

TEST(QasmReadTest, RejectsBadInputs)
{
    EXPECT_THROW(read_qasm("OPENQASM 2.0; qreg q[2]; h q[5];"),
                 QasmError);
    EXPECT_THROW(read_qasm("OPENQASM 2.0; qreg q[2]; cx q[0];"),
                 QasmError);
    EXPECT_THROW(read_qasm("OPENQASM 2.0; qreg q[2]; h(0.5) q[0];"),
                 QasmError);
    EXPECT_THROW(read_qasm("OPENQASM 2.0; qreg q[2]; rz q[0];"),
                 QasmError);
    EXPECT_THROW(read_qasm("OPENQASM 2.0; qreg q[2]; x r[0];"),
                 QasmError);
    EXPECT_THROW(read_qasm("OPENQASM 2.0; qreg q[2]; qreg q[3];"),
                 QasmError);
    EXPECT_THROW(read_qasm("OPENQASM 2.0; qreg q[2]; x q[0]"),
                 QasmError); // missing final ';'
    EXPECT_THROW(read_qasm("OPENQASM 2.0; qreg q[2]; rz(1/0) q[0];"),
                 QasmError);
}

class QasmRoundTrip : public ::testing::TestWithParam<benchmarks::Kind>
{
};

TEST_P(QasmRoundTrip, BenchmarkSurvivesRoundTrip)
{
    const Circuit original =
        benchmarks::make(GetParam(), 12, 3);
    const Circuit reparsed = read_qasm(write_qasm(original));
    ASSERT_EQ(reparsed.num_qubits(), original.num_qubits());
    ASSERT_EQ(reparsed.counts().total, original.counts().total);

    // Unitary equivalence on the simulator.
    StateVector a(original.num_qubits()), b(original.num_qubits());
    Circuit prep(original.num_qubits());
    for (QubitId q = 0; q < original.num_qubits(); ++q)
        prep.add(Gate::ry(q, 0.3 + 0.1 * q));
    a.apply(prep);
    b.apply(prep);
    a.apply(original);
    b.apply(reparsed);
    EXPECT_GT(a.fidelity(b), 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, QasmRoundTrip,
                         ::testing::ValuesIn(benchmarks::all_kinds()));

TEST(QasmRoundTripEdge, CompiledScheduleExports)
{
    // Routed output (with SWAPs) must serialize and re-parse.
    GridTopology topo(3, 3);
    const Circuit logical = benchmarks::cuccaro(8);
    const CompileResult res =
        compile(logical, topo, CompilerOptions::neutral_atom(1.0));
    ASSERT_TRUE(res.success);
    const Circuit device_circuit = res.compiled.to_circuit();
    const Circuit reparsed = read_qasm(write_qasm(device_circuit));
    EXPECT_EQ(reparsed.counts().total, device_circuit.counts().total);
    EXPECT_EQ(reparsed.counts().swaps, device_circuit.counts().swaps);
}

/**
 * Table-driven negative paths: every malformed program must raise
 * QasmError anchored at the right line with a recognizable message.
 */
struct NegativeCase
{
    const char *name;    ///< gtest parameter name.
    const char *source;  ///< One statement per line.
    size_t line;         ///< Expected QasmError::line().
    const char *message; ///< Required substring of what().
};

class QasmNegative : public ::testing::TestWithParam<NegativeCase>
{
};

TEST_P(QasmNegative, RaisesQasmErrorWithLineInfo)
{
    const NegativeCase &c = GetParam();
    try {
        read_qasm(c.source);
        FAIL() << "expected QasmError for:\n" << c.source;
    } catch (const QasmError &e) {
        EXPECT_EQ(e.line(), c.line) << e.what();
        EXPECT_NE(std::string(e.what()).find(c.message),
                  std::string::npos)
            << "missing '" << c.message << "' in: " << e.what();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table, QasmNegative,
    ::testing::Values(
        // The refusal list after the coverage PR: qelib1 gates all
        // parse now, so what remains unsupported is genuinely outside
        // OpenQASM 2.0 / qelib1 (or malformed).
        NegativeCase{"UnsupportedGateName",
                     "OPENQASM 2.0;\nqreg q[1];\nbogus q[0];\n", 3,
                     "unsupported gate 'bogus'"},
        NegativeCase{"OpaqueDeclaration",
                     "OPENQASM 2.0;\nqreg q[1];\nopaque magic a;\n", 3,
                     "opaque gate declarations are not supported"},
        NegativeCase{"ClassicalControl",
                     "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c "
                     "== 1) x q[0];\n",
                     4, "'if'"},
        NegativeCase{"Reset",
                     "OPENQASM 2.0;\nqreg q[1];\nreset q[0];\n", 3,
                     "'reset' is not supported"},
        // Strict index/size parsing: strtoul-style truncation of
        // `q[junk]` / `q[5x]` must be a hard error, not q[0] / size 5.
        NegativeCase{"JunkRegisterIndex",
                     "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[junk];\n",
                     3, "bad register index 'junk'"},
        NegativeCase{"TrailingGarbageIndex",
                     "OPENQASM 2.0;\nqreg q[2];\nh q[1x];\n", 3,
                     "bad register index '1x'"},
        NegativeCase{"JunkRegisterSize",
                     "OPENQASM 2.0;\nqreg q[5x];\n", 2,
                     "bad register size '5x'"},
        NegativeCase{"NegativeIndex",
                     "OPENQASM 2.0;\nqreg q[2];\nh q[-1];\n", 3,
                     "bad register index '-1'"},
        // Keyword dispatch needs a token boundary: `measurements` is
        // an unknown gate, not a malformed measure.
        NegativeCase{"KeywordPrefixNotMeasure",
                     "OPENQASM 2.0;\nqreg q[1];\nmeasurements "
                     "q[0];\n",
                     3, "unsupported gate 'measurements'"},
        NegativeCase{"KeywordPrefixNotBarrier",
                     "OPENQASM 2.0;\nqreg q[1];\nbarriers q[0];\n", 3,
                     "unsupported gate 'barriers'"},
        // Identifiers in angle expressions are lexed whole: `pix` is
        // not `pi` with trailing characters.
        NegativeCase{"UnknownAngleIdentifier",
                     "OPENQASM 2.0;\nqreg q[1];\nrz(pix) q[0];\n", 3,
                     "unknown identifier 'pix'"},
        // Macro negatives.
        NegativeCase{"MacroRedefinesBuiltin",
                     "OPENQASM 2.0;\nqreg q[1];\ngate h a { x a; "
                     "}\n",
                     3, "redefines an existing gate"},
        NegativeCase{"MacroUnknownBodyOperand",
                     "OPENQASM 2.0;\nqreg q[1];\ngate foo a { x b; "
                     "}\nfoo q[0];\n",
                     3, "unknown operand 'b' in gate 'foo' body"},
        NegativeCase{"MacroIndexedBodyOperand",
                     "OPENQASM 2.0;\nqreg q[1];\ngate foo a { x "
                     "q[0]; }\nfoo q[0];\n",
                     3, "gate bodies may not index registers"},
        NegativeCase{"MacroMeasureInBody",
                     "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\ngate "
                     "foo a { measure a -> c[0]; }\nfoo q[0];\n",
                     4, "may only contain gate applications"},
        NegativeCase{"MacroWrongArity",
                     "OPENQASM 2.0;\nqreg q[2];\ngate foo a, b { cx "
                     "a, b; }\nfoo q[0];\n",
                     4, "'foo' expects 2 operand(s)"},
        NegativeCase{"RecursiveMacro",
                     "OPENQASM 2.0;\nqreg q[1];\ngate foo a { foo a; "
                     "}\nfoo q[0];\n",
                     3, "gate expansion too deep"},
        // Broadcast negatives.
        NegativeCase{"BroadcastSizeMismatch",
                     "OPENQASM 2.0;\nqreg a[2];\nqreg b[3];\ncx a, "
                     "b;\n",
                     4, "mismatched register sizes in broadcast"},
        NegativeCase{"MeasureBroadcastSizeMismatch",
                     "OPENQASM 2.0;\nqreg q[3];\ncreg c[2];\nmeasure "
                     "q -> c;\n",
                     4, "measure broadcast needs equal register "
                        "sizes"},
        NegativeCase{"MeasureMixedOperandForms",
                     "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nmeasure "
                     "q[0] -> c;\n",
                     4, "both indexed or both whole registers"},
        // Measure creg targets are validated now.
        NegativeCase{"MeasureUnknownCreg",
                     "OPENQASM 2.0;\nqreg q[1];\nmeasure q[0] -> "
                     "c[0];\n",
                     3, "unknown creg 'c'"},
        NegativeCase{"MeasureCregOutOfRange",
                     "OPENQASM 2.0;\nqreg q[2];\ncreg c[1];\nmeasure "
                     "q[1] -> c[1];\n",
                     4, "index 1 out of range for 'c'"},
        NegativeCase{"HeaderMissingVersion", "OPENQASM;\nqreg q[1];\n",
                     1, "malformed OPENQASM header"},
        NegativeCase{"HeaderNoSpace",
                     "OPENQASM2.0;\nqreg q[1];\nx q[0];\n", 1,
                     "malformed OPENQASM header"},
        NegativeCase{"HeaderWrongVersion",
                     "// cmt\nOPENQASM 3.0;\nqreg q[1];\n", 2,
                     "unsupported OPENQASM version '3.0'"},
        NegativeCase{"SingleQubitOutOfRange",
                     "OPENQASM 2.0;\nqreg q[2];\nh q[2];\n", 3,
                     "index 2 out of range"},
        NegativeCase{"SecondOperandOutOfRange",
                     "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], "
                     "q[7];\n",
                     4, "index 7 out of range"},
        NegativeCase{"MeasureOutOfRange",
                     "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nmeasure "
                     "q[5] -> c[0];\n",
                     4, "index 5 out of range"},
        NegativeCase{"UnknownRegister",
                     "OPENQASM 2.0;\nqreg q[2];\nx r[0];\n", 3,
                     "unknown qreg 'r'"},
        NegativeCase{"MissingCloseBracket",
                     "OPENQASM 2.0;\nqreg q[2];\nx q[0;\n", 3,
                     "missing ']'"},
        NegativeCase{"ZeroWidthRegister",
                     "OPENQASM 2.0;\nqreg q[0];\n", 2,
                     "bad register name or size"},
        NegativeCase{"MeasureWithoutArrow",
                     "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nmeasure "
                     "q[0];\n",
                     4, "measure without '->'"},
        NegativeCase{"WrongArity",
                     "OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n", 3,
                     "'cx' expects 2"},
        NegativeCase{"ParameterOnPlainGate",
                     "OPENQASM 2.0;\nqreg q[1];\nh(0.5) q[0];\n", 3,
                     "'h' takes no parameter"},
        NegativeCase{"MissingParameter",
                     "OPENQASM 2.0;\nqreg q[1];\nrz q[0];\n", 3,
                     "'rz' needs a parameter"},
        NegativeCase{"DivisionByZeroAngle",
                     "OPENQASM 2.0;\nqreg q[1];\nrz(1/0) q[0];\n", 3,
                     "division by zero"}),
    [](const ::testing::TestParamInfo<NegativeCase> &info) {
        return std::string(info.param.name);
    });

TEST(QasmRoundTripEdge, AnglePrecisionPreserved)
{
    Circuit c(2);
    c.add(Gate::rz(0, 1.0 / 3.0));
    c.add(Gate::cphase(0, 1, std::numbers::pi / 1024));
    const Circuit reparsed = read_qasm(write_qasm(c));
    EXPECT_DOUBLE_EQ(reparsed[0].param, 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(reparsed[1].param, std::numbers::pi / 1024);
}

} // namespace
} // namespace naq
