#include "viz/render.h"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "core/compiler.h"
#include "core/router.h"
#include "loss/shot_engine.h"

namespace naq {
namespace {

TEST(RenderDeviceTest, BareDeviceAllSpares)
{
    GridTopology topo(2, 3);
    const std::string text = render_device(topo);
    EXPECT_EQ(text, ".. .. ..\n.. .. ..\n");
}

TEST(RenderDeviceTest, MappingAndLossMarkers)
{
    GridTopology topo(2, 2);
    topo.deactivate(topo.site(1, 1));
    const std::string text = render_device(topo, {topo.site(0, 1)});
    EXPECT_EQ(text, ".. 00\n.. XX\n");
}

TEST(RenderDeviceTest, QubitIndicesModulo100)
{
    GridTopology topo(1, 2);
    // Qubit 0 -> site 0, qubit 1 -> site 1; indices print 2 digits.
    const std::string text = render_device(topo, {0, 1});
    EXPECT_EQ(text, "00 01\n");
}

TEST(RenderScheduleTest, ListsGatesPerTimestep)
{
    GridTopology topo(3, 3);
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::cx(0, 1));
    const CompileResult res =
        compile(c, topo, CompilerOptions::neutral_atom(1.0));
    ASSERT_TRUE(res.success);
    const std::string text = render_schedule(res.compiled);
    EXPECT_NE(text.find("t0:"), std::string::npos);
    EXPECT_NE(text.find("h("), std::string::npos);
    EXPECT_NE(text.find("cx("), std::string::npos);
}

TEST(RenderScheduleTest, TruncatesLongSchedules)
{
    GridTopology topo(10, 10);
    const CompileResult res =
        compile(benchmarks::cuccaro(20), topo,
                CompilerOptions::neutral_atom(1.0));
    ASSERT_TRUE(res.success);
    const std::string text = render_schedule(res.compiled, 5);
    EXPECT_NE(text.find("more timesteps"), std::string::npos);
}

TEST(RenderScheduleTest, MarksRoutingSwaps)
{
    GridTopology topo(5, 5);
    Circuit c(2);
    c.add(Gate::cx(0, 1));
    const RoutingResult res = route_circuit(
        c, topo, {topo.site(0, 0), topo.site(0, 4)},
        CompilerOptions::neutral_atom(1.0));
    ASSERT_TRUE(res.success);
    const std::string text = render_schedule(res.compiled);
    EXPECT_NE(text.find(")*"), std::string::npos);
}

TEST(RenderTimelineTest, EmptyTimeline)
{
    EXPECT_EQ(render_timeline({}), "(empty timeline)\n");
}

TEST(RenderTimelineTest, BarCoversAllKinds)
{
    std::vector<TimelineEvent> events{
        {TimelineEvent::Kind::Compile, 0.0, 1.0},
        {TimelineEvent::Kind::Run, 1.0, 0.5},
        {TimelineEvent::Kind::Reload, 1.5, 0.5},
    };
    const std::string text = render_timeline(events, 40);
    EXPECT_NE(text.find('C'), std::string::npos);
    EXPECT_NE(text.find('R'), std::string::npos);
    // The bar is exactly 40 characters between the pipes.
    const size_t open = text.find('|');
    const size_t close = text.find('|', open + 1);
    EXPECT_EQ(close - open - 1, 40u);
}

TEST(RenderTimelineTest, ShortEventsStillVisible)
{
    std::vector<TimelineEvent> events{
        {TimelineEvent::Kind::Compile, 0.0, 10.0},
        {TimelineEvent::Kind::Fixup, 10.0, 1e-6}, // Tiny but drawn.
    };
    const std::string text = render_timeline(events, 50);
    EXPECT_NE(text.find('x'), std::string::npos);
}

} // namespace
} // namespace naq
