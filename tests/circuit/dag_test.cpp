#include "circuit/dag.h"

#include <gtest/gtest.h>

namespace naq {
namespace {

TEST(DagTest, SerialChainLayers)
{
    Circuit c(2);
    c.add(Gate::h(0));      // 0: layer 0
    c.add(Gate::cx(0, 1));  // 1: layer 1
    c.add(Gate::h(1));      // 2: layer 2
    const CircuitDag dag(c);
    EXPECT_EQ(dag.num_layers(), 3u);
    EXPECT_EQ(dag.layer_of(0), 0u);
    EXPECT_EQ(dag.layer_of(1), 1u);
    EXPECT_EQ(dag.layer_of(2), 2u);
}

TEST(DagTest, ParallelGatesShareLayer)
{
    Circuit c(4);
    c.add(Gate::cx(0, 1));
    c.add(Gate::cx(2, 3));
    const CircuitDag dag(c);
    EXPECT_EQ(dag.num_layers(), 1u);
    EXPECT_EQ(dag.layer(0).size(), 2u);
}

TEST(DagTest, PredecessorsAndSuccessors)
{
    Circuit c(3);
    c.add(Gate::h(0));      // 0
    c.add(Gate::h(1));      // 1
    c.add(Gate::cx(0, 1));  // 2 depends on 0 and 1
    c.add(Gate::cx(1, 2));  // 3 depends on 2
    const CircuitDag dag(c);
    EXPECT_EQ(dag.in_degree(0), 0u);
    EXPECT_EQ(dag.in_degree(2), 2u);
    EXPECT_EQ(dag.in_degree(3), 1u);
    EXPECT_EQ(dag.successors(0), (std::vector<size_t>{2}));
    EXPECT_EQ(dag.successors(2), (std::vector<size_t>{3}));
    EXPECT_EQ(dag.predecessors(3), (std::vector<size_t>{2}));
}

TEST(DagTest, NoDuplicateEdgeForSharedOperands)
{
    Circuit c(3);
    c.add(Gate::ccx(0, 1, 2)); // 0
    c.add(Gate::ccx(0, 1, 2)); // 1 shares all three qubits with 0
    const CircuitDag dag(c);
    EXPECT_EQ(dag.predecessors(1).size(), 1u);
    EXPECT_EQ(dag.successors(0).size(), 1u);
}

TEST(DagTest, InitialFrontier)
{
    Circuit c(4);
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    c.add(Gate::cx(0, 1));
    c.add(Gate::h(2));
    const CircuitDag dag(c);
    EXPECT_EQ(dag.initial_frontier(), (std::vector<size_t>{0, 1, 3}));
}

TEST(DagTest, MeasureParticipatesInDependencies)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::measure(0));
    const CircuitDag dag(c);
    EXPECT_EQ(dag.in_degree(1), 1u);
    EXPECT_EQ(dag.layer_of(1), 1u);
}

TEST(DagTest, LayersPartitionAllGates)
{
    Circuit c(5);
    for (int rep = 0; rep < 3; ++rep) {
        for (QubitId q = 0; q + 1 < 5; ++q)
            c.add(Gate::cx(q, q + 1));
    }
    const CircuitDag dag(c);
    size_t total = 0;
    for (size_t l = 0; l < dag.num_layers(); ++l)
        total += dag.layer(l).size();
    EXPECT_EQ(total, c.size());
}

} // namespace
} // namespace naq
