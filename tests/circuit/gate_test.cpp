#include "circuit/gate.h"

#include <gtest/gtest.h>

namespace naq {
namespace {

TEST(GateTest, FactoryArities)
{
    EXPECT_EQ(Gate::x(0).arity(), 1u);
    EXPECT_EQ(Gate::cx(0, 1).arity(), 2u);
    EXPECT_EQ(Gate::ccx(0, 1, 2).arity(), 3u);
    EXPECT_EQ(Gate::swap(0, 1).kind, GateKind::Swap);
    EXPECT_EQ(Gate::measure(3).kind, GateKind::Measure);
}

TEST(GateTest, McxCollapsesSmallArities)
{
    EXPECT_EQ(Gate::mcx({0}, 5).kind, GateKind::CX);
    EXPECT_EQ(Gate::mcx({0, 1}, 5).kind, GateKind::CCX);
    const Gate wide = Gate::mcx({0, 1, 2}, 5);
    EXPECT_EQ(wide.kind, GateKind::MCX);
    EXPECT_EQ(wide.arity(), 4u);
    EXPECT_EQ(wide.qubits.back(), 5u);
}

TEST(GateTest, McxEmptyControlsThrows)
{
    EXPECT_THROW(Gate::mcx({}, 1), std::invalid_argument);
}

TEST(GateTest, RotationKeepsParam)
{
    const Gate g = Gate::rz(2, 0.75);
    EXPECT_DOUBLE_EQ(g.param, 0.75);
    EXPECT_EQ(g.kind, GateKind::RZ);
}

TEST(GateTest, UnitaryClassification)
{
    EXPECT_TRUE(Gate::h(0).is_unitary());
    EXPECT_TRUE(Gate::swap(0, 1).is_unitary());
    EXPECT_FALSE(Gate::measure(0).is_unitary());
    EXPECT_FALSE(Gate::barrier({0, 1}).is_unitary());
}

TEST(GateTest, InteractionRequiresTwoOperandUnitary)
{
    EXPECT_FALSE(Gate::h(0).is_interaction());
    EXPECT_TRUE(Gate::cx(0, 1).is_interaction());
    EXPECT_TRUE(Gate::ccx(0, 1, 2).is_interaction());
    EXPECT_FALSE(Gate::measure(0).is_interaction());
    EXPECT_FALSE(Gate::barrier({0, 1}).is_interaction());
}

TEST(GateTest, DiagonalKinds)
{
    EXPECT_TRUE(gate_kind_is_diagonal(GateKind::CZ));
    EXPECT_TRUE(gate_kind_is_diagonal(GateKind::CPhase));
    EXPECT_TRUE(gate_kind_is_diagonal(GateKind::RZ));
    EXPECT_FALSE(gate_kind_is_diagonal(GateKind::CX));
    EXPECT_FALSE(gate_kind_is_diagonal(GateKind::H));
}

TEST(GateTest, ToStringMentionsOperands)
{
    const std::string s = Gate::cx(3, 7).to_string();
    EXPECT_NE(s.find("cx"), std::string::npos);
    EXPECT_NE(s.find("q3"), std::string::npos);
    EXPECT_NE(s.find("q7"), std::string::npos);
}

TEST(GateTest, RoutingFlagInToString)
{
    Gate sw = Gate::swap(0, 1);
    sw.is_routing = true;
    EXPECT_NE(sw.to_string().find("routing"), std::string::npos);
}

TEST(GateTest, EqualityIncludesRoutingFlag)
{
    Gate a = Gate::swap(0, 1);
    Gate b = Gate::swap(0, 1);
    EXPECT_EQ(a, b);
    b.is_routing = true;
    EXPECT_NE(a, b);
}

TEST(GateTest, KindNamesUnique)
{
    EXPECT_STREQ(gate_kind_name(GateKind::CCX), "ccx");
    EXPECT_STREQ(gate_kind_name(GateKind::CPhase), "cphase");
    EXPECT_STREQ(gate_kind_name(GateKind::Measure), "measure");
}

} // namespace
} // namespace naq
