#include "circuit/circuit.h"

#include <gtest/gtest.h>

namespace naq {
namespace {

TEST(CircuitTest, AddValidatesRange)
{
    Circuit c(2);
    EXPECT_NO_THROW(c.add(Gate::cx(0, 1)));
    EXPECT_THROW(c.add(Gate::x(2)), std::out_of_range);
}

TEST(CircuitTest, AddRejectsDuplicateOperands)
{
    Circuit c(3);
    EXPECT_THROW(c.add(Gate::cx(1, 1)), std::invalid_argument);
    EXPECT_THROW(c.add(Gate::ccx(0, 2, 2)), std::invalid_argument);
}

TEST(CircuitTest, DepthSerialChain)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::cx(0, 1));
    c.add(Gate::h(1));
    EXPECT_EQ(c.depth(), 3u);
}

TEST(CircuitTest, DepthParallelGates)
{
    Circuit c(4);
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    c.add(Gate::cx(0, 1));
    c.add(Gate::cx(2, 3));
    EXPECT_EQ(c.depth(), 2u);
}

TEST(CircuitTest, MeasureDoesNotAddDepth)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::measure(0));
    EXPECT_EQ(c.depth(), 1u);
}

TEST(CircuitTest, BarrierSynchronizesWithoutDepth)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::barrier({0, 1}));
    c.add(Gate::x(1)); // Must wait for the barrier: level becomes 2.
    EXPECT_EQ(c.depth(), 2u);
}

TEST(CircuitTest, CountsByCategory)
{
    Circuit c(4);
    c.add(Gate::h(0));
    c.add(Gate::cx(0, 1));
    c.add(Gate::swap(1, 2));
    Gate routing = Gate::swap(2, 3);
    routing.is_routing = true;
    c.add(routing);
    c.add(Gate::ccx(0, 1, 2));
    c.add(Gate::measure(0));

    const GateCounts counts = c.counts();
    EXPECT_EQ(counts.total, 5u);
    EXPECT_EQ(counts.one_qubit, 1u);
    EXPECT_EQ(counts.two_qubit, 3u);
    EXPECT_EQ(counts.multi_qubit, 1u);
    EXPECT_EQ(counts.swaps, 2u);
    EXPECT_EQ(counts.routing_swaps, 1u);
    EXPECT_EQ(counts.measurements, 1u);
    // cx-equivalent: 5 + 2 per swap = 9.
    EXPECT_EQ(counts.cx_equivalent(), 9u);
}

TEST(CircuitTest, ExtendRequiresSameWidth)
{
    Circuit a(2), b(2), c(3);
    b.add(Gate::x(0));
    a.extend(b);
    EXPECT_EQ(a.size(), 1u);
    EXPECT_THROW(a.extend(c), std::invalid_argument);
}

TEST(CircuitTest, UsedQubitsSkipsIdle)
{
    Circuit c(5);
    c.add(Gate::cx(1, 3));
    const std::vector<QubitId> used = c.used_qubits();
    EXPECT_EQ(used, (std::vector<QubitId>{1, 3}));
}

TEST(CircuitTest, MaxArity)
{
    Circuit c(4);
    EXPECT_EQ(c.max_arity(), 0u);
    c.add(Gate::h(0));
    EXPECT_EQ(c.max_arity(), 1u);
    c.add(Gate::ccx(0, 1, 2));
    EXPECT_EQ(c.max_arity(), 3u);
    c.add(Gate::measure(3)); // Non-unitary: ignored.
    EXPECT_EQ(c.max_arity(), 3u);
}

TEST(CircuitTest, KindHistogram)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    c.add(Gate::cx(0, 1));
    const auto hist = c.kind_histogram();
    EXPECT_EQ(hist.at(GateKind::H), 2u);
    EXPECT_EQ(hist.at(GateKind::CX), 1u);
}

TEST(CircuitTest, EmptyCircuitProperties)
{
    Circuit c(3, "empty");
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.depth(), 0u);
    EXPECT_EQ(c.counts().total, 0u);
    EXPECT_EQ(c.name(), "empty");
}

} // namespace
} // namespace naq
