#include "decompose/decompose.h"

#include <cmath>
#include <gtest/gtest.h>

#include "sim/statevector.h"

namespace naq {
namespace {

/** Fidelity between applying `a` and `b` to every basis state. */
void
expect_equivalent(const Circuit &a, const Circuit &b)
{
    ASSERT_EQ(a.num_qubits(), b.num_qubits());
    const uint64_t dim = uint64_t{1} << a.num_qubits();
    for (uint64_t basis = 0; basis < dim; ++basis) {
        StateVector sa(a.num_qubits()), sb(b.num_qubits());
        sa.set_basis_state(basis);
        sb.set_basis_state(basis);
        sa.apply(a);
        sb.apply(b);
        ASSERT_GT(sa.fidelity(sb), 1.0 - 1e-9)
            << "divergence on basis state " << basis;
    }
}

TEST(DecomposeTest, CcxExpansionHasSixCx)
{
    Circuit c(3);
    append_ccx_decomposition(c, 0, 1, 2);
    size_t cx = 0;
    for (const Gate &g : c.gates())
        cx += g.kind == GateKind::CX;
    EXPECT_EQ(cx, 6u);
    EXPECT_EQ(c.max_arity(), 2u);
}

TEST(DecomposeTest, CcxExpansionIsUnitarilyCorrect)
{
    Circuit native(3), expanded(3);
    native.add(Gate::ccx(0, 1, 2));
    append_ccx_decomposition(expanded, 0, 1, 2);
    expect_equivalent(native, expanded);
}

TEST(DecomposeTest, CcxArbitraryOperandOrder)
{
    Circuit native(3), expanded(3);
    native.add(Gate::ccx(2, 0, 1));
    append_ccx_decomposition(expanded, 2, 0, 1);
    expect_equivalent(native, expanded);
}

TEST(DecomposeTest, CczExpansionIsUnitarilyCorrect)
{
    Circuit native(3), expanded(3);
    native.add(Gate::ccz(0, 1, 2));
    append_ccz_decomposition(expanded, 0, 1, 2);
    expect_equivalent(native, expanded);
}

TEST(DecomposeTest, SwapExpansionIsUnitarilyCorrect)
{
    Circuit native(2), expanded(2);
    native.add(Gate::swap(0, 1));
    append_swap_decomposition(expanded, 0, 1);
    expect_equivalent(native, expanded);
}

TEST(DecomposeTest, DecomposeMultiqubitLeaves2qAlone)
{
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::cx(0, 1));
    c.add(Gate::ccx(0, 1, 2));
    c.add(Gate::measure(2));
    const Circuit out = decompose_multiqubit(c);
    EXPECT_EQ(out.max_arity(), 2u);
    EXPECT_EQ(out.counts().measurements, 1u);
    expect_equivalent(c, out);
}

TEST(DecomposeTest, WideMcxThrows)
{
    Circuit c(5);
    c.add(Gate::mcx({0, 1, 2}, 4));
    EXPECT_THROW(decompose_multiqubit(c), std::invalid_argument);
}

TEST(DecomposeTest, DecomposeSwapsReplacesEverySwap)
{
    Circuit c(3);
    c.add(Gate::swap(0, 1));
    c.add(Gate::cx(1, 2));
    c.add(Gate::swap(1, 2));
    const Circuit out = decompose_swaps(c);
    EXPECT_EQ(out.counts().swaps, 0u);
    EXPECT_EQ(out.counts().two_qubit, 7u);
    expect_equivalent(c, out);
}

TEST(DecomposeTest, MinDistanceForArity)
{
    EXPECT_DOUBLE_EQ(min_distance_for_arity(1), 1.0);
    EXPECT_DOUBLE_EQ(min_distance_for_arity(2), 1.0);
    // 3 and 4 atoms fit in a 2x2 block: diagonal sqrt(2).
    EXPECT_DOUBLE_EQ(min_distance_for_arity(3), std::sqrt(2.0));
    EXPECT_DOUBLE_EQ(min_distance_for_arity(4), std::sqrt(2.0));
    // 5 and 6 atoms need 2x3: diagonal sqrt(5).
    EXPECT_DOUBLE_EQ(min_distance_for_arity(6), std::sqrt(5.0));
    // 9 atoms: 3x3 block, diagonal 2*sqrt(2).
    EXPECT_DOUBLE_EQ(min_distance_for_arity(9), 2.0 * std::sqrt(2.0));
    // Monotone non-decreasing.
    double prev = 0.0;
    for (size_t k = 1; k <= 20; ++k) {
        EXPECT_GE(min_distance_for_arity(k) + 1e-12, prev);
        prev = min_distance_for_arity(k);
    }
}

} // namespace
} // namespace naq
