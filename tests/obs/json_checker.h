/**
 * @file
 * Minimal JSON well-formedness checker for tests.
 *
 * Just enough of RFC 8259 to verify syntax: objects, arrays, strings
 * with escapes, numbers, literals. No DOM — a single forward pass
 * that fails on any error. The trace/metrics tests use it to pin
 * that exported artifacts parse in any real consumer (Perfetto,
 * python json.load) without taking a dependency here.
 */
#pragma once

#include <cctype>
#include <string>

namespace naq::testjson {

class JsonChecker
{
  public:
    static bool
    valid(const std::string &text)
    {
        JsonChecker c(text);
        c.ws();
        if (!c.value())
            return false;
        c.ws();
        return c.p_ == c.end_;
    }

  private:
    explicit JsonChecker(const std::string &text)
        : p_(text.data()), end_(text.data() + text.size())
    {
    }

    void
    ws()
    {
        while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' ||
                             *p_ == '\n' || *p_ == '\r'))
            ++p_;
    }

    bool
    literal(const char *word)
    {
        for (const char *w = word; *w; ++w, ++p_) {
            if (p_ >= end_ || *p_ != *w)
                return false;
        }
        return true;
    }

    bool
    string()
    {
        if (p_ >= end_ || *p_ != '"')
            return false;
        ++p_;
        while (p_ < end_ && *p_ != '"') {
            if (static_cast<unsigned char>(*p_) < 0x20)
                return false; // Raw control char: invalid.
            if (*p_ == '\\') {
                ++p_;
                if (p_ >= end_)
                    return false;
                const char e = *p_;
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++p_;
                        if (p_ >= end_ ||
                            !std::isxdigit((unsigned char)*p_))
                            return false;
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return false;
                }
            }
            ++p_;
        }
        if (p_ >= end_)
            return false;
        ++p_; // Closing quote.
        return true;
    }

    bool
    number()
    {
        const char *start = p_;
        if (p_ < end_ && *p_ == '-')
            ++p_;
        while (p_ < end_ && std::isdigit((unsigned char)*p_))
            ++p_;
        if (p_ < end_ && *p_ == '.') {
            ++p_;
            if (p_ >= end_ || !std::isdigit((unsigned char)*p_))
                return false;
            while (p_ < end_ && std::isdigit((unsigned char)*p_))
                ++p_;
        }
        if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
            ++p_;
            if (p_ < end_ && (*p_ == '+' || *p_ == '-'))
                ++p_;
            if (p_ >= end_ || !std::isdigit((unsigned char)*p_))
                return false;
            while (p_ < end_ && std::isdigit((unsigned char)*p_))
                ++p_;
        }
        return p_ > start;
    }

    bool
    value()
    {
        if (p_ >= end_)
            return false;
        switch (*p_) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++p_; // '{'
        ws();
        if (p_ < end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        for (;;) {
            ws();
            if (!string())
                return false;
            ws();
            if (p_ >= end_ || *p_ != ':')
                return false;
            ++p_;
            ws();
            if (!value())
                return false;
            ws();
            if (p_ < end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            break;
        }
        if (p_ >= end_ || *p_ != '}')
            return false;
        ++p_;
        return true;
    }

    bool
    array()
    {
        ++p_; // '['
        ws();
        if (p_ < end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        for (;;) {
            ws();
            if (!value())
                return false;
            ws();
            if (p_ < end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            break;
        }
        if (p_ >= end_ || *p_ != ']')
            return false;
        ++p_;
        return true;
    }

    const char *p_;
    const char *end_;
};

} // namespace naq::testjson
