/**
 * @file
 * Disarmed-tracing overhead guard for the router hot loop.
 *
 * The router stays instrumented in production builds on the promise
 * that a disarmed check is one relaxed atomic load. This test holds
 * that promise to the acceptance number: the measured cost of the
 * disarmed `Tracer::armed()` check, multiplied by the number of
 * checks a real routing run performs (one per timestep), must stay
 * under 2 % of that run's measured wall time. A compile-out A/B isn't
 * possible in one binary, so the bound is built from the measured
 * parts — the same estimate `perf_suite` reports as
 * `trace_disarmed_overhead_pct`.
 *
 * Timing-based, so every quantity is a best-of-N minimum (load spikes
 * inflate both sides roughly equally, and the 2 % ceiling sits ~10x
 * above the observed estimate).
 */
#include <gtest/gtest.h>

#include <chrono>

#include "benchmarks/benchmarks.h"
#include "core/device_analysis.h"
#include "core/mapper.h"
#include "core/router.h"
#include "obs/trace.h"
#include "topology/grid.h"

namespace naq::obs {
namespace {

using Clock = std::chrono::steady_clock;

double
ns_since(Clock::time_point start)
{
    return std::chrono::duration<double, std::nano>(Clock::now() -
                                                    start)
        .count();
}

TEST(TraceOverheadTest, DisarmedRouterCheckStaysUnderTwoPercent)
{
    Tracer &tracer = Tracer::global();
    tracer.disarm_and_clear();
    ASSERT_FALSE(tracer.armed());

    // Cost of one disarmed check: best of 5 tight loops. The armed_
    // flag is a process-global atomic, so the load cannot be hoisted;
    // the accumulated sum keeps the loop observable.
    constexpr size_t kChecks = 1 << 21;
    double check_ns = 0.0;
    size_t armed_seen = 0;
    for (int rep = 0; rep < 5; ++rep) {
        const auto start = Clock::now();
        for (size_t i = 0; i < kChecks; ++i)
            armed_seen += tracer.armed() ? 1 : 0;
        const double ns = ns_since(start) / double(kChecks);
        if (rep == 0 || ns < check_ns)
            check_ns = ns;
    }
    ASSERT_EQ(armed_seen, 0u);

    // A real routing-bound run (the perf_suite micro at a smaller
    // size): QFT-Adder at MID 2, prebuilt shared state.
    GridTopology topo(10, 10);
    const CompilerOptions opts = CompilerOptions::neutral_atom(2.0);
    const Circuit program =
        benchmarks::make(benchmarks::Kind::QFTAdder, 24, 7);
    const DeviceAnalysis analysis(topo,
                                  opts.max_interaction_distance);
    const CircuitDag dag(program);
    const InteractionGraph graph(dag, opts.lookahead_layers,
                                 opts.lookahead_decay);
    const std::vector<Site> mapping = initial_map(
        graph, program.num_qubits(), topo, &analysis);
    ASSERT_FALSE(mapping.empty());

    double route_ns = 0.0;
    size_t timesteps = 0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = Clock::now();
        const RoutingResult res =
            route_circuit(program, topo, mapping, opts, analysis,
                          CircuitDag(program),
                          InteractionGraph(dag, opts.lookahead_layers,
                                           opts.lookahead_decay));
        const double ns = ns_since(start);
        ASSERT_TRUE(res.success) << res.failure_reason;
        timesteps = res.compiled.num_timesteps;
        if (rep == 0 || ns < route_ns)
            route_ns = ns;
    }
    ASSERT_GT(timesteps, 0u);

    // One disarmed check per routed timestep.
    const double overhead_pct =
        100.0 * check_ns * double(timesteps) / route_ns;
    EXPECT_LT(overhead_pct, 2.0)
        << "disarmed check " << check_ns << " ns x " << timesteps
        << " timesteps vs route " << route_ns
        << " ns — the disarmed fast path regressed";
}

} // namespace
} // namespace naq::obs
