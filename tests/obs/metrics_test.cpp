/**
 * @file
 * MetricsRegistry semantics: disabled no-ops, deterministic sorted
 * snapshots, cross-thread shard merging, and the "naq-metrics-v1"
 * JSON shape `naqc --metrics` writes.
 *
 * The registry is process-wide state shared with the library's own
 * instrumentation, so every test starts and ends from a reset
 * registry and asserts only on metric names it owns.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace naq::obs {
namespace {

/** Reset around each test: the registry is a process-wide singleton. */
class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        MetricsRegistry::global().disable_and_reset();
    }
    void TearDown() override
    {
        MetricsRegistry::global().disable_and_reset();
    }
};

TEST_F(MetricsTest, DisabledRecordingIsANoOp)
{
    auto &m = MetricsRegistry::global();
    ASSERT_FALSE(m.enabled());
    m.counter_add("t.counter", 5);
    m.value_add("t.value", 5);
    m.gauge_set("t.gauge", 1.5);
    m.hist_record_ns("t.hist_ns", 100);

    const MetricsSnapshot snap = m.snapshot();
    EXPECT_EQ(snap.counter("t.counter"), 0u);
    EXPECT_EQ(snap.histogram("t.hist_ns"), nullptr);
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_TRUE(snap.histograms.empty());
    EXPECT_EQ(snap.to_text(), "(no metrics recorded)\n");
}

TEST_F(MetricsTest, CountersValuesGaugesAndHistogramsLand)
{
    auto &m = MetricsRegistry::global();
    m.enable();
    m.counter_add("t.events");
    m.counter_add("t.events", 4);
    m.value_add("t.tally", 7);
    m.gauge_set("t.resident", 3.0);
    m.gauge_set("t.resident", 9.0); // Last write wins.
    for (uint64_t v : {100, 200, 300, 400})
        m.hist_record_ns("t.lat_ns", v);

    const MetricsSnapshot snap = m.snapshot();
    EXPECT_EQ(snap.counter("t.events"), 5u);

    double tally = 0.0, resident = 0.0;
    for (const auto &[name, v] : snap.gauges) {
        if (name == "t.tally")
            tally = v;
        if (name == "t.resident")
            resident = v;
    }
    EXPECT_EQ(tally, 7.0);
    EXPECT_EQ(resident, 9.0);

    const MetricsSnapshot::HistRow *h = snap.histogram("t.lat_ns");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 4u);
    EXPECT_EQ(h->sum, 1000u);
    EXPECT_EQ(h->min, 100u);
    EXPECT_EQ(h->max, 400u);
    // Ceil-rank p50 of {100,200,300,400} sits in 200's bucket.
    EXPECT_EQ(h->p50, LogHistogram::bucket_mid(
                          LogHistogram::bucket_index(200)));
}

TEST_F(MetricsTest, SnapshotIsNameSorted)
{
    auto &m = MetricsRegistry::global();
    m.enable();
    m.counter_add("t.zz");
    m.counter_add("t.aa");
    m.counter_add("t.mm");
    m.hist_record_ns("t.z_ns", 1);
    m.hist_record_ns("t.a_ns", 1);

    const MetricsSnapshot snap = m.snapshot();
    EXPECT_TRUE(std::is_sorted(
        snap.counters.begin(), snap.counters.end(),
        [](const auto &a, const auto &b) { return a.first < b.first; }));
    EXPECT_TRUE(std::is_sorted(snap.histograms.begin(),
                               snap.histograms.end(),
                               [](const auto &a, const auto &b) {
                                   return a.name < b.name;
                               }));
}

TEST_F(MetricsTest, ShardsMergeAcrossPoolThreads)
{
    auto &m = MetricsRegistry::global();
    m.enable();

    // 400 increments spread over pool workers plus the caller: the
    // per-thread shards must fold to the exact total regardless of
    // which thread ran which index.
    constexpr size_t kN = 400;
    ThreadPool pool(4);
    pool.parallel_for(kN, [&](size_t i) {
        m.counter_add("t.parallel");
        m.hist_record_ns("t.parallel_ns", uint64_t(i) + 1);
    });

    const MetricsSnapshot snap = m.snapshot();
    EXPECT_EQ(snap.counter("t.parallel"), kN);
    const MetricsSnapshot::HistRow *h = snap.histogram("t.parallel_ns");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, kN);
    EXPECT_EQ(h->sum, kN * (kN + 1) / 2);
    EXPECT_EQ(h->min, 1u);
    EXPECT_EQ(h->max, kN);
}

TEST_F(MetricsTest, JsonCarriesSchemaAndSections)
{
    auto &m = MetricsRegistry::global();
    m.enable();
    m.counter_add("t.events", 3);
    m.gauge_set("t.resident", 2.0);
    m.hist_record_ns("t.lat_ns", 1000);

    const std::string json = m.snapshot().to_json();
    EXPECT_NE(json.find("\"schema\": \"naq-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"t.events\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"t.resident\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"t.lat_ns\": {\"count\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST_F(MetricsTest, TextTableRendersAllSections)
{
    auto &m = MetricsRegistry::global();
    m.enable();
    m.counter_add("t.events", 3);
    m.value_add("t.tally", 90);
    m.hist_record_ns("t.lat_ns", 1000);

    const std::string text = m.snapshot().to_text();
    EXPECT_NE(text.find("counters"), std::string::npos);
    EXPECT_NE(text.find("gauges"), std::string::npos);
    EXPECT_NE(text.find("histograms (ns)"), std::string::npos);
    EXPECT_NE(text.find("t.events"), std::string::npos);
    // Integral gauges print as integers, not scientific notation.
    EXPECT_NE(text.find("90"), std::string::npos);
    EXPECT_EQ(text.find("9e+01"), std::string::npos);
}

TEST_F(MetricsTest, DisableAndResetDropsEverything)
{
    auto &m = MetricsRegistry::global();
    m.enable();
    m.counter_add("t.events", 3);
    ASSERT_EQ(m.snapshot().counter("t.events"), 3u);

    m.disable_and_reset();
    EXPECT_FALSE(m.enabled());
    EXPECT_TRUE(m.snapshot().counters.empty());

    // Re-enabling starts from zero, and the recording thread's stale
    // TLS shard re-registers on the new generation.
    m.enable();
    m.counter_add("t.events", 2);
    EXPECT_EQ(m.snapshot().counter("t.events"), 2u);
}

} // namespace
} // namespace naq::obs
