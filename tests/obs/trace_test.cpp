/**
 * @file
 * Trace export contract: the "naq-trace-v1" document is valid Chrome
 * trace-event JSON (pinned by an in-test parser — Perfetto and
 * chrome://tracing both consume this shape), instrumented subsystems
 * actually emit spans, and the *set* of events for a fixed sequential
 * workload is deterministic across runs (timestamps of course are
 * not).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "../obs/json_checker.h"
#include "benchmarks/benchmarks.h"
#include "core/compile_memo.h"
#include "core/compiler.h"
#include "desim/device_sim.h"
#include "obs/trace.h"
#include "sweep/runner.h"
#include "sweep/standard.h"
#include "topology/grid.h"

namespace naq::obs {
namespace {

// ------------------------------------------------------ test fixtures

/** Tracer is process-wide; every test starts and ends disarmed. */
class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { Tracer::global().disarm_and_clear(); }
    void TearDown() override { Tracer::global().disarm_and_clear(); }
};

/** All `"key":"value"` occurrences of a string field, in order. */
std::vector<std::string>
field_values(const std::string &json, const std::string &key)
{
    std::vector<std::string> out;
    const std::string needle = "\"" + key + "\":\"";
    size_t pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        const size_t end = json.find('"', pos);
        if (end == std::string::npos)
            break;
        out.push_back(json.substr(pos, end - pos));
        pos = end + 1;
    }
    return out;
}

/** The fixed sequential workload the golden test replays: one small
 * sweep through the memo (compile/pass/router/memo/sweep events) at
 * jobs=1 so even the memo hit/miss split is deterministic. */
void
run_sequential_sweep()
{
    sweep::StandardSpec spec;
    spec.sweep.name = "trace-golden";
    spec.sweep.jobs = 1;
    spec.sweep.axis("bench", sweep::strs({"BV"}));
    spec.sweep.axis("size", sweep::ints({8}));
    spec.sweep.axis("mid", sweep::nums({2.0, 3.0}));
    spec.sweep.axis("trial", sweep::indices(2));
    spec.memo_capacity = 64;
    auto memo = std::make_shared<CompileMemo>(64);
    const sweep::SweepRun run =
        sweep::SweepRunner(spec.sweep)
            .run(sweep::standard_experiment(spec, memo));
    for (const sweep::PointResult &res : run.results)
        ASSERT_TRUE(res.ok) << res.note;
}

TEST_F(TraceTest, DisarmedSpansRecordNothing)
{
    Tracer &tracer = Tracer::global();
    ASSERT_FALSE(tracer.armed());
    {
        Span span("never", trace_cat::kCompile);
        EXPECT_FALSE(span.live());
        span.arg("k", "v"); // Must be a no-op, not a crash.
    }
    tracer.instant("never", trace_cat::kMemo);
    EXPECT_EQ(tracer.event_count(), 0u);
}

TEST_F(TraceTest, ExportIsValidJsonWithSchemaHeader)
{
    Tracer &tracer = Tracer::global();
    tracer.arm();
    run_sequential_sweep();
    tracer.instant("marker", trace_cat::kMemo,
                   "\"note\":\"quote \\\" and\\nnewline\"");
    const std::string json = tracer.export_json();

    EXPECT_TRUE(testjson::JsonChecker::valid(json)) << json.substr(0, 400);
    EXPECT_NE(json.find("\"schema\": \"naq-trace-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Metadata rows name the process and the main thread.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("{\"name\":\"main\"}"), std::string::npos);
    // Instants are thread-scoped ("s":"t"); Perfetto needs the scope.
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST_F(TraceTest, SequentialSweepCoversFiveSubsystems)
{
    Tracer &tracer = Tracer::global();
    tracer.arm();
    run_sequential_sweep();

    // A device-sim replay on top adds the sim category.
    GridTopology topo(10, 10);
    const Circuit program =
        benchmarks::make(benchmarks::Kind::BV, 8, 7);
    const CompileResult res =
        compile(program, topo, CompilerOptions::neutral_atom(3.0));
    ASSERT_TRUE(res.success);
    desim::DeviceSim(topo, desim::BackendProfile::neutral_atom())
        .run(res.compiled);

    const std::string json = tracer.export_json();
    const std::vector<std::string> cats = field_values(json, "cat");
    const std::set<std::string> unique(cats.begin(), cats.end());
    for (const char *want :
         {trace_cat::kCompile, trace_cat::kPass, trace_cat::kRouter,
          trace_cat::kMemo, trace_cat::kSweep, trace_cat::kSim}) {
        EXPECT_TRUE(unique.count(want)) << "missing category " << want;
    }
    EXPECT_GE(unique.size(), 5u);

    // The pipeline's named passes appear as pass spans.
    const std::vector<std::string> names = field_values(json, "name");
    const std::set<std::string> name_set(names.begin(), names.end());
    EXPECT_TRUE(name_set.count("compile"));
    EXPECT_TRUE(name_set.count("route.steps"));
    EXPECT_TRUE(name_set.count("point"));
    EXPECT_TRUE(name_set.count("sim.run"));
    EXPECT_TRUE(name_set.count("memo.hit"));
    EXPECT_TRUE(name_set.count("memo.miss"));
}

TEST_F(TraceTest, EventSetIsDeterministicModuloTimestamps)
{
    Tracer &tracer = Tracer::global();

    const auto run_once = [&] {
        tracer.arm();
        run_sequential_sweep();
        const std::string json = tracer.export_json();
        tracer.disarm_and_clear();
        // Compare (name, cat) multisets: timestamps and durations
        // differ run to run, the recorded event set must not.
        std::vector<std::string> events;
        const std::vector<std::string> names =
            field_values(json, "name");
        const std::vector<std::string> cats = field_values(json, "cat");
        // Metadata rows have names but no cat; pair from the tail so
        // cat[i] aligns with the i-th *data* event's name.
        const size_t meta = names.size() - cats.size();
        for (size_t i = 0; i < cats.size(); ++i)
            events.push_back(cats[i] + ":" + names[meta + i]);
        std::sort(events.begin(), events.end());
        return events;
    };

    const std::vector<std::string> first = run_once();
    const std::vector<std::string> second = run_once();
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST_F(TraceTest, SpanArgsAndRearmClearing)
{
    Tracer &tracer = Tracer::global();
    tracer.arm();
    {
        Span span("custom", trace_cat::kSweep);
        ASSERT_TRUE(span.live());
        span.arg("label", "a \"quoted\" value").arg("n", 42);
    }
    std::string json = tracer.export_json();
    EXPECT_TRUE(testjson::JsonChecker::valid(json)) << json;
    EXPECT_NE(json.find("\"label\":\"a \\\"quoted\\\" value\""),
              std::string::npos);
    EXPECT_NE(json.find("\"n\":42"), std::string::npos);

    // Re-arming drops previously buffered events.
    tracer.arm();
    EXPECT_EQ(tracer.event_count(), 0u);
    json = tracer.export_json();
    EXPECT_TRUE(testjson::JsonChecker::valid(json)) << json;
    EXPECT_EQ(json.find("custom"), std::string::npos);
}

} // namespace
} // namespace naq::obs
