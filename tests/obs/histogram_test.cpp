/**
 * @file
 * LogHistogram bucket math and percentile semantics.
 *
 * The histogram underpins every latency percentile the repo exports
 * (`naqc --metrics`, BENCH_compile.json), so its arithmetic is pinned
 * here: exact small-value buckets, ~12.5 % relative bucket width in
 * the log range, ceil-rank percentile selection, and merge as exact
 * element-wise addition (the per-thread shard fold).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "obs/histogram.h"

namespace naq::obs {
namespace {

TEST(LogHistogramTest, SmallValuesGetExactBuckets)
{
    for (uint64_t v = 0; v < uint64_t(LogHistogram::kSub); ++v) {
        EXPECT_EQ(LogHistogram::bucket_index(v), int(v));
        EXPECT_EQ(LogHistogram::bucket_lower(int(v)), v);
        EXPECT_EQ(LogHistogram::bucket_mid(int(v)), v);
    }
}

TEST(LogHistogramTest, BucketLowerInvertsBucketIndex)
{
    // Every bucket's lower bound maps back to that bucket, bounds are
    // strictly increasing, and a value one below the next bound stays
    // in place — the buckets tile the domain without gaps or overlap.
    for (int i = 0; i < 200; ++i) {
        const uint64_t lo = LogHistogram::bucket_lower(i);
        EXPECT_EQ(LogHistogram::bucket_index(lo), i) << "bucket " << i;
        const uint64_t next = LogHistogram::bucket_lower(i + 1);
        ASSERT_GT(next, lo) << "bucket " << i;
        EXPECT_EQ(LogHistogram::bucket_index(next - 1), i)
            << "bucket " << i;
    }
}

TEST(LogHistogramTest, RelativeBucketWidthStaysBelowEighth)
{
    // The documented accuracy contract: midpoint error <= width/2,
    // width/lower <= 1/8 in the logarithmic range.
    for (int i = LogHistogram::kSub; i < 300; ++i) {
        const uint64_t lo = LogHistogram::bucket_lower(i);
        const uint64_t width = LogHistogram::bucket_lower(i + 1) - lo;
        EXPECT_LE(double(width) / double(lo), 1.0 / 8.0 + 1e-12)
            << "bucket " << i;
    }
}

TEST(LogHistogramTest, CountSumMinMaxMean)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(50), 0u);

    h.record(7);
    h.record(3);
    h.record(100);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 110u);
    EXPECT_EQ(h.min(), 3u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 110.0 / 3.0);
}

TEST(LogHistogramTest, PercentileUsesCeilRank)
{
    // Four exact-bucket samples: p50 must select the 2nd smallest
    // (ceil(0.5 * 4) = 2), p75 the 3rd, p100 the largest, p0 clamps
    // to the 1st.
    LogHistogram h;
    for (uint64_t v : {1, 2, 3, 4})
        h.record(v);
    EXPECT_EQ(h.percentile(0), 1u);
    EXPECT_EQ(h.percentile(50), 2u);
    EXPECT_EQ(h.percentile(75), 3u);
    EXPECT_EQ(h.percentile(100), 4u);
}

TEST(LogHistogramTest, PercentileIsBucketMidpointInLogRange)
{
    LogHistogram h;
    h.record(1000);
    const int idx = LogHistogram::bucket_index(1000);
    EXPECT_EQ(h.percentile(50), LogHistogram::bucket_mid(idx));
    // Midpoint error is bounded by half the ~12.5 % bucket width.
    const double err =
        double(h.percentile(50)) > 1000.0
            ? double(h.percentile(50)) - 1000.0
            : 1000.0 - double(h.percentile(50));
    EXPECT_LE(err / 1000.0, 1.0 / 16.0 + 1e-12);
}

TEST(LogHistogramTest, MergeEqualsSingleHistogramOfUnion)
{
    // Record one deterministic sample stream into one histogram, and
    // the same stream split across three shards merged afterwards:
    // identical counts, identical percentiles — the snapshot fold
    // cannot depend on how work was sharded.
    std::mt19937_64 rng(42);
    std::vector<uint64_t> samples(3000);
    for (uint64_t &s : samples)
        s = rng() % 10'000'000;

    LogHistogram whole;
    LogHistogram shard[3];
    for (size_t i = 0; i < samples.size(); ++i) {
        whole.record(samples[i]);
        shard[i % 3].record(samples[i]);
    }
    LogHistogram merged;
    for (const LogHistogram &s : shard)
        merged.merge(s);

    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.sum(), whole.sum());
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_EQ(merged.max(), whole.max());
    for (double q : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0})
        EXPECT_EQ(merged.percentile(q), whole.percentile(q)) << q;
}

TEST(LogHistogramTest, HugeValuesStayInRange)
{
    LogHistogram h;
    const uint64_t huge = ~uint64_t(0);
    h.record(huge);
    h.record(0);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), huge);
    EXPECT_LT(LogHistogram::bucket_index(huge), LogHistogram::kBuckets);
    EXPECT_GE(h.percentile(100), LogHistogram::bucket_lower(
                                     LogHistogram::bucket_index(huge)));
}

} // namespace
} // namespace naq::obs
