#include "topology/zone.h"

#include <cmath>
#include <gtest/gtest.h>

namespace naq {
namespace {

class ZoneTest : public ::testing::Test
{
  protected:
    GridTopology grid_{10, 10};
    ZoneSpec paper_ = ZoneSpec::paper();
};

TEST_F(ZoneTest, RadiusIsHalfDistance)
{
    const auto z = make_zone(grid_, {grid_.site(0, 0), grid_.site(0, 4)},
                             paper_);
    EXPECT_DOUBLE_EQ(z.radius, 2.0);
}

TEST_F(ZoneTest, AdjacentGateRadiusHalf)
{
    const auto z = make_zone(grid_, {grid_.site(0, 0), grid_.site(0, 1)},
                             paper_);
    EXPECT_DOUBLE_EQ(z.radius, 0.5);
}

TEST_F(ZoneTest, SingleQubitRadiusZero)
{
    const auto z = make_zone(grid_, {grid_.site(3, 3)}, paper_);
    EXPECT_DOUBLE_EQ(z.radius, 0.0);
}

TEST_F(ZoneTest, MultiqubitUsesMaxPairwise)
{
    const auto z = make_zone(
        grid_, {grid_.site(0, 0), grid_.site(0, 1), grid_.site(0, 3)},
        paper_);
    EXPECT_DOUBLE_EQ(z.radius, 1.5);
}

TEST_F(ZoneTest, DisabledSpecZeroRadius)
{
    const auto z = make_zone(grid_, {grid_.site(0, 0), grid_.site(0, 6)},
                             ZoneSpec::disabled());
    EXPECT_DOUBLE_EQ(z.radius, 0.0);
}

TEST_F(ZoneTest, MinRadiusFloor)
{
    ZoneSpec padded = paper_;
    padded.min_interaction_radius = 2.0;
    const auto z = make_zone(grid_, {grid_.site(0, 0), grid_.site(0, 1)},
                             padded);
    EXPECT_DOUBLE_EQ(z.radius, 2.0);
    // Floor applies to interactions only, not 1q gates.
    const auto z1 = make_zone(grid_, {grid_.site(0, 0)}, padded);
    EXPECT_DOUBLE_EQ(z1.radius, 0.0);
}

TEST_F(ZoneTest, SharedSiteAlwaysConflicts)
{
    const auto a = make_zone(grid_, {grid_.site(0, 0), grid_.site(0, 1)},
                             ZoneSpec::disabled());
    const auto b = make_zone(grid_, {grid_.site(0, 1), grid_.site(0, 2)},
                             ZoneSpec::disabled());
    EXPECT_TRUE(zones_conflict(grid_, a, b));
}

TEST_F(ZoneTest, AdjacentParallelGatesDoNotConflict)
{
    // Two side-by-side nearest-neighbour gates: centers 1 apart,
    // radii 0.5 + 0.5 — tangent, not overlapping (paper Fig. 1a).
    const auto a = make_zone(grid_, {grid_.site(0, 0), grid_.site(1, 0)},
                             paper_);
    const auto b = make_zone(grid_, {grid_.site(0, 1), grid_.site(1, 1)},
                             paper_);
    EXPECT_FALSE(zones_conflict(grid_, a, b));
}

TEST_F(ZoneTest, LongGateBlocksNeighbourhood)
{
    // Distance-4 gate (radius 2) vs a 1q gate 1 site away from an
    // operand: inside the zone.
    const auto big = make_zone(
        grid_, {grid_.site(5, 2), grid_.site(5, 6)}, paper_);
    const auto one = make_zone(grid_, {grid_.site(5, 3)}, paper_);
    EXPECT_TRUE(zones_conflict(grid_, big, one));
    // A 1q gate far away is fine.
    const auto far = make_zone(grid_, {grid_.site(0, 9)}, paper_);
    EXPECT_FALSE(zones_conflict(grid_, big, far));
}

TEST_F(ZoneTest, ConflictIsSymmetric)
{
    const auto a = make_zone(grid_, {grid_.site(2, 2), grid_.site(2, 5)},
                             paper_);
    const auto b = make_zone(grid_, {grid_.site(3, 3), grid_.site(4, 3)},
                             paper_);
    EXPECT_EQ(zones_conflict(grid_, a, b), zones_conflict(grid_, b, a));
}

TEST_F(ZoneTest, TangentZonesCoSchedule)
{
    // Two distance-2 gates (radius 1) whose nearest operands are
    // exactly 2 apart: tangent discs, allowed.
    const auto a = make_zone(grid_, {grid_.site(0, 0), grid_.site(0, 2)},
                             paper_);
    const auto b = make_zone(grid_, {grid_.site(0, 4), grid_.site(0, 6)},
                             paper_);
    EXPECT_FALSE(zones_conflict(grid_, a, b));
    // One site closer: overlap.
    const auto c = make_zone(grid_, {grid_.site(0, 3), grid_.site(0, 5)},
                             paper_);
    EXPECT_TRUE(zones_conflict(grid_, a, c));
}

TEST_F(ZoneTest, TwoSingleQubitGatesNeverConflict)
{
    const auto a = make_zone(grid_, {grid_.site(0, 0)}, paper_);
    const auto b = make_zone(grid_, {grid_.site(0, 1)}, paper_);
    EXPECT_FALSE(zones_conflict(grid_, a, b));
}

} // namespace
} // namespace naq
