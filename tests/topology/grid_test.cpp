#include "topology/grid.h"

#include <cmath>
#include <gtest/gtest.h>

namespace naq {
namespace {

TEST(GridTest, CoordRoundTrip)
{
    GridTopology g(4, 5);
    for (Site s = 0; s < g.num_sites(); ++s) {
        const Coord c = g.coord(s);
        EXPECT_EQ(g.site(c.row, c.col), s);
    }
}

TEST(GridTest, InvalidDimensionsThrow)
{
    EXPECT_THROW(GridTopology(0, 5), std::invalid_argument);
    EXPECT_THROW(GridTopology(3, -1), std::invalid_argument);
}

TEST(GridTest, EuclideanDistance)
{
    GridTopology g(10, 10);
    EXPECT_DOUBLE_EQ(g.distance(g.site(0, 0), g.site(0, 1)), 1.0);
    EXPECT_DOUBLE_EQ(g.distance(g.site(0, 0), g.site(1, 1)),
                     std::sqrt(2.0));
    EXPECT_DOUBLE_EQ(g.distance(g.site(0, 0), g.site(3, 4)), 5.0);
    EXPECT_DOUBLE_EQ(g.distance(g.site(2, 2), g.site(2, 2)), 0.0);
}

TEST(GridTest, ActivationBookkeeping)
{
    GridTopology g(3, 3);
    EXPECT_EQ(g.num_active(), 9u);
    g.deactivate(4);
    EXPECT_EQ(g.num_active(), 8u);
    EXPECT_FALSE(g.is_active(4));
    g.deactivate(4); // Idempotent.
    EXPECT_EQ(g.num_active(), 8u);
    g.activate(4);
    EXPECT_EQ(g.num_active(), 9u);
    g.deactivate(0);
    g.deactivate(1);
    g.activate_all();
    EXPECT_EQ(g.num_active(), 9u);
}

TEST(GridTest, WithinDistancePairwise)
{
    GridTopology g(5, 5);
    // L-shaped triple: max pairwise distance sqrt(2).
    const std::vector<Site> tri{g.site(0, 0), g.site(0, 1), g.site(1, 0)};
    EXPECT_FALSE(g.within_distance(tri, 1.0));
    EXPECT_TRUE(g.within_distance(tri, std::sqrt(2.0)));
    EXPECT_TRUE(g.within_distance({g.site(0, 0)}, 0.0));
}

TEST(GridTest, MaxPairwiseDistance)
{
    GridTopology g(5, 5);
    EXPECT_DOUBLE_EQ(
        g.max_pairwise_distance({g.site(0, 0), g.site(0, 3)}), 3.0);
    EXPECT_DOUBLE_EQ(g.max_pairwise_distance({g.site(1, 1)}), 0.0);
    EXPECT_DOUBLE_EQ(g.max_pairwise_distance({}), 0.0);
}

TEST(GridTest, ActiveWithinRadius)
{
    GridTopology g(5, 5);
    const Site center = g.site(2, 2);
    // Radius 1: the 4-neighbourhood.
    EXPECT_EQ(g.active_within(center, 1.0).size(), 4u);
    // Radius sqrt(2): 8-neighbourhood.
    EXPECT_EQ(g.active_within(center, std::sqrt(2.0)).size(), 8u);
    g.deactivate(g.site(2, 1));
    EXPECT_EQ(g.active_within(center, 1.0).size(), 3u);
    // Excludes the site itself.
    for (Site s : g.active_within(center, 2.0))
        EXPECT_NE(s, center);
}

TEST(GridTest, CornerBoundingBox)
{
    GridTopology g(4, 4);
    EXPECT_EQ(g.active_within(g.site(0, 0), 1.0).size(), 2u);
}

TEST(GridTest, FullConnectivityDistance)
{
    GridTopology g(10, 10);
    EXPECT_DOUBLE_EQ(g.full_connectivity_distance(), std::hypot(9, 9));
    // Every pair is within that distance.
    EXPECT_TRUE(g.within_distance({g.site(0, 0), g.site(9, 9)},
                                  g.full_connectivity_distance()));
}

TEST(GridTest, LargestComponentFullGrid)
{
    GridTopology g(4, 4);
    EXPECT_EQ(g.largest_component_within(1.0), 16u);
}

TEST(GridTest, LargestComponentSplitsOnCut)
{
    GridTopology g(3, 3);
    // Deactivate the middle column: two 3x1 strips at MID 1.
    for (int r = 0; r < 3; ++r)
        g.deactivate(g.site(r, 1));
    EXPECT_EQ(g.largest_component_within(1.0), 3u);
    // MID 2 bridges the gap.
    EXPECT_EQ(g.largest_component_within(2.0), 6u);
}

TEST(GridTest, ShortestActivePathDirect)
{
    GridTopology g(4, 4);
    const auto path =
        g.shortest_active_path(g.site(0, 0), g.site(0, 3), 1.0);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path.front(), g.site(0, 0));
    EXPECT_EQ(path.back(), g.site(0, 3));
}

TEST(GridTest, ShortestActivePathAvoidsHoles)
{
    GridTopology g(3, 3);
    g.deactivate(g.site(0, 1));
    const auto path =
        g.shortest_active_path(g.site(0, 0), g.site(0, 2), 1.0);
    ASSERT_FALSE(path.empty());
    EXPECT_GT(path.size(), 3u); // Must detour around the hole.
    for (Site s : path)
        EXPECT_TRUE(g.is_active(s));
}

TEST(GridTest, ShortestActivePathUnreachable)
{
    GridTopology g(3, 3);
    for (int r = 0; r < 3; ++r)
        g.deactivate(g.site(r, 1));
    EXPECT_TRUE(
        g.shortest_active_path(g.site(0, 0), g.site(0, 2), 1.0).empty());
    // Longer hops bridge the cut.
    EXPECT_FALSE(
        g.shortest_active_path(g.site(0, 0), g.site(0, 2), 2.0).empty());
}

TEST(GridTest, ShortestPathSameSite)
{
    GridTopology g(2, 2);
    EXPECT_EQ(g.shortest_active_path(1, 1, 1.0).size(), 1u);
}

} // namespace
} // namespace naq
