/**
 * @file
 * Equivalence of the analysis-backed zone fast path with the direct
 * Euclidean implementation: exhaustive small-grid checks that the
 * table-backed `zones_conflict` (bounding-box prefilter + distance
 * table) and `make_zone` agree with the `GridTopology` versions on
 * every site pair and a spread of radii/specs.
 */
#include <gtest/gtest.h>

#include "core/device_analysis.h"
#include "topology/zone.h"

namespace naq {
namespace {

class ZoneFastPathTest : public ::testing::Test
{
  protected:
    GridTopology grid_{6, 6};
    DeviceAnalysis analysis_{grid_, 3.0};
};

TEST_F(ZoneFastPathTest, MakeZoneMatchesOnEveryPair)
{
    const ZoneSpec spec = ZoneSpec::paper();
    for (Site a = 0; a < grid_.num_sites(); ++a) {
        for (Site b = 0; b < grid_.num_sites(); ++b) {
            if (a == b)
                continue;
            const RestrictionZone slow = make_zone(grid_, {a, b}, spec);
            const RestrictionZone fast =
                make_zone(analysis_, {a, b}, spec);
            ASSERT_EQ(slow.radius, fast.radius) << a << "," << b;
            ASSERT_EQ(slow.sites, fast.sites);
            ASSERT_EQ(slow.min_row, fast.min_row);
            ASSERT_EQ(slow.max_row, fast.max_row);
            ASSERT_EQ(slow.min_col, fast.min_col);
            ASSERT_EQ(slow.max_col, fast.max_col);
        }
    }
}

TEST_F(ZoneFastPathTest, ConflictVerdictMatchesOnEveryZonePair)
{
    // Every adjacent-pair zone against every adjacent-pair zone: the
    // exact population the router's per-timestep conflict loop sees.
    const ZoneSpec spec = ZoneSpec::paper();
    std::vector<RestrictionZone> zones;
    for (Site s = 0; s < grid_.num_sites(); ++s) {
        const Coord c = grid_.coord(s);
        if (grid_.in_bounds(c.row, c.col + 1))
            zones.push_back(make_zone(analysis_,
                                      {s, grid_.site(c.row, c.col + 1)},
                                      spec));
        if (grid_.in_bounds(c.row + 1, c.col))
            zones.push_back(make_zone(analysis_,
                                      {s, grid_.site(c.row + 1, c.col)},
                                      spec));
    }
    size_t conflicts = 0;
    for (const RestrictionZone &a : zones) {
        for (const RestrictionZone &b : zones) {
            const bool slow = zones_conflict(grid_, a, b);
            const bool fast = zones_conflict(analysis_, a, b);
            ASSERT_EQ(slow, fast)
                << "a={" << a.sites[0] << "," << a.sites[1] << "} b={"
                << b.sites[0] << "," << b.sites[1] << "}";
            conflicts += fast;
        }
    }
    // Sanity: the population exercises both verdicts.
    EXPECT_GT(conflicts, 0u);
    EXPECT_LT(conflicts, zones.size() * zones.size());
}

TEST_F(ZoneFastPathTest, ConflictVerdictMatchesAcrossRadii)
{
    // Sweep zone factors and floors, including radius 0 (the
    // shared-site-only fast path) and a floor large enough that the
    // prefilter almost never rejects.
    std::vector<ZoneSpec> specs;
    specs.push_back(ZoneSpec::disabled());
    for (double factor : {0.0, 0.5, 1.0, 2.5}) {
        for (double floor : {0.0, 1.0, 4.0}) {
            ZoneSpec s;
            s.factor = factor;
            s.min_interaction_radius = floor;
            specs.push_back(s);
        }
    }
    const std::vector<std::pair<Site, Site>> pairs = {
        {grid_.site(0, 0), grid_.site(0, 2)},
        {grid_.site(2, 2), grid_.site(3, 3)},
        {grid_.site(5, 0), grid_.site(5, 2)},
        {grid_.site(0, 5), grid_.site(2, 5)},
    };
    for (const ZoneSpec &sa : specs) {
        for (const ZoneSpec &sb : specs) {
            for (const auto &[a1, a2] : pairs) {
                for (const auto &[b1, b2] : pairs) {
                    const auto za = make_zone(analysis_, {a1, a2}, sa);
                    const auto zb = make_zone(analysis_, {b1, b2}, sb);
                    ASSERT_EQ(zones_conflict(grid_, za, zb),
                              zones_conflict(analysis_, za, zb));
                }
            }
        }
    }
}

TEST_F(ZoneFastPathTest, MultiqubitZonesMatch)
{
    const ZoneSpec spec = ZoneSpec::paper();
    const auto wide = make_zone(
        analysis_,
        {grid_.site(1, 1), grid_.site(1, 3), grid_.site(3, 2)}, spec);
    const auto wide_slow = make_zone(
        grid_, {grid_.site(1, 1), grid_.site(1, 3), grid_.site(3, 2)},
        spec);
    EXPECT_EQ(wide.radius, wide_slow.radius);
    for (Site s = 0; s < grid_.num_sites(); ++s) {
        const Coord c = grid_.coord(s);
        if (!grid_.in_bounds(c.row, c.col + 1))
            continue;
        const auto other = make_zone(
            analysis_, {s, grid_.site(c.row, c.col + 1)}, spec);
        ASSERT_EQ(zones_conflict(grid_, wide, other),
                  zones_conflict(analysis_, wide, other))
            << "against " << s;
    }
}

TEST_F(ZoneFastPathTest, HandBuiltZoneWithoutBoundsSkipsPrefilter)
{
    // Aggregate-constructed zones (no bounding box) must still get
    // the exact verdict from the full check.
    RestrictionZone a{{grid_.site(0, 0), grid_.site(0, 1)}, 0.5};
    RestrictionZone b{{grid_.site(0, 2), grid_.site(0, 3)}, 0.5};
    EXPECT_FALSE(a.has_bounds());
    EXPECT_EQ(zones_conflict(grid_, a, b),
              zones_conflict(analysis_, a, b));
    RestrictionZone c{{grid_.site(0, 1), grid_.site(0, 2)}, 2.0};
    EXPECT_EQ(zones_conflict(grid_, a, c),
              zones_conflict(analysis_, a, c));
}

TEST_F(ZoneFastPathTest, StagedFootprintMatchesMakeZone)
{
    // The SoA ledger's staging must apply the same radius policy and
    // bounds fill as make_zone, for 1q, 2q and multiqubit operand
    // sets under every spec shape.
    std::vector<ZoneSpec> specs{ZoneSpec::paper(),
                                ZoneSpec::disabled()};
    ZoneSpec floored;
    floored.min_interaction_radius = 2.5;
    specs.push_back(floored);
    const std::vector<std::vector<Site>> operand_sets = {
        {grid_.site(2, 2)},
        {grid_.site(0, 0), grid_.site(0, 1)},
        {grid_.site(1, 4), grid_.site(4, 1)},
        {grid_.site(1, 1), grid_.site(1, 3), grid_.site(3, 2)},
    };
    for (const ZoneSpec &spec : specs) {
        for (const std::vector<Site> &sites : operand_sets) {
            const RestrictionZone zone =
                make_zone(analysis_, sites, spec);
            const ZoneFootprint fp =
                ZoneLedger::stage(analysis_, sites, spec);
            ASSERT_EQ(fp.radius, zone.radius);
            ASSERT_EQ(fp.min_row, zone.min_row);
            ASSERT_EQ(fp.max_row, zone.max_row);
            ASSERT_EQ(fp.min_col, zone.min_col);
            ASSERT_EQ(fp.max_col, zone.max_col);
        }
    }
}

TEST_F(ZoneFastPathTest, LedgerVerdictMatchesPairwiseOnEveryZonePair)
{
    // The router's actual conflict query: a candidate footprint
    // against the ledger of this timestep's committed zones. Its
    // verdict must equal "conflicts with any" under the pairwise
    // zones_conflict the ledger replaced — exhaustively, over the
    // same adjacent-pair population as the AoS test above.
    const ZoneSpec spec = ZoneSpec::paper();
    std::vector<RestrictionZone> zones;
    for (Site s = 0; s < grid_.num_sites(); ++s) {
        const Coord c = grid_.coord(s);
        if (grid_.in_bounds(c.row, c.col + 1))
            zones.push_back(make_zone(analysis_,
                                      {s, grid_.site(c.row, c.col + 1)},
                                      spec));
        if (grid_.in_bounds(c.row + 1, c.col))
            zones.push_back(make_zone(analysis_,
                                      {s, grid_.site(c.row + 1, c.col)},
                                      spec));
    }
    ZoneLedger ledger;
    for (const RestrictionZone &z : zones)
        ledger.push(ZoneLedger::stage(analysis_, z.sites, spec));

    size_t conflicts = 0;
    for (const RestrictionZone &cand : zones) {
        bool expected = false;
        for (const RestrictionZone &committed : zones)
            expected =
                expected || zones_conflict(analysis_, committed, cand);
        const bool got = ledger.conflicts(
            analysis_, ZoneLedger::stage(analysis_, cand.sites, spec));
        ASSERT_EQ(got, expected)
            << "candidate {" << cand.sites[0] << "," << cand.sites[1]
            << "}";
        conflicts += got;
    }
    EXPECT_GT(conflicts, 0u);
}

TEST_F(ZoneFastPathTest, LedgerVerdictMatchesAcrossRadiiAndArity)
{
    // Mixed radii (including the radius-0 shared-site-only path) and
    // arities in one ledger, checked against pairwise truth — the
    // shape a real timestep commits (1q gates next to wide gates).
    std::vector<ZoneSpec> specs;
    specs.push_back(ZoneSpec::disabled());
    for (double factor : {0.0, 0.5, 2.5}) {
        for (double floor : {0.0, 4.0}) {
            ZoneSpec s;
            s.factor = factor;
            s.min_interaction_radius = floor;
            specs.push_back(s);
        }
    }
    const std::vector<std::vector<Site>> operand_sets = {
        {grid_.site(2, 2)},
        {grid_.site(0, 0), grid_.site(0, 2)},
        {grid_.site(5, 0), grid_.site(5, 2)},
        {grid_.site(1, 1), grid_.site(1, 3), grid_.site(3, 2)},
    };
    for (const ZoneSpec &ledger_spec : specs) {
        ZoneLedger ledger;
        std::vector<RestrictionZone> committed;
        for (const std::vector<Site> &sites : operand_sets) {
            committed.push_back(
                make_zone(analysis_, sites, ledger_spec));
            ledger.push(
                ZoneLedger::stage(analysis_, sites, ledger_spec));
        }
        for (const ZoneSpec &cand_spec : specs) {
            for (const std::vector<Site> &sites : operand_sets) {
                const RestrictionZone cand =
                    make_zone(analysis_, sites, cand_spec);
                bool expected = false;
                for (const RestrictionZone &z : committed)
                    expected =
                        expected || zones_conflict(analysis_, z, cand);
                ASSERT_EQ(ledger.conflicts(
                              analysis_, ZoneLedger::stage(
                                             analysis_, sites,
                                             cand_spec)),
                          expected);
            }
        }
    }
}

TEST_F(ZoneFastPathTest, LedgerClearKeepsNothing)
{
    const ZoneSpec spec = ZoneSpec::paper();
    const std::vector<Site> sites{grid_.site(2, 2), grid_.site(2, 3)};
    ZoneLedger ledger;
    ledger.push(ZoneLedger::stage(analysis_, sites, spec));
    EXPECT_EQ(ledger.size(), 1u);
    EXPECT_TRUE(ledger.conflicts(
        analysis_, ZoneLedger::stage(analysis_, sites, spec)));
    ledger.clear();
    EXPECT_EQ(ledger.size(), 0u);
    EXPECT_FALSE(ledger.conflicts(
        analysis_, ZoneLedger::stage(analysis_, sites, spec)));
}

TEST_F(ZoneFastPathTest, FallbackDeviceAboveTableCapStillMatches)
{
    // Devices above the precompute cap serve distance() by direct
    // topology scans; the zone overloads must agree there too.
    GridTopology big(40, 40); // 1600 sites > table cap.
    DeviceAnalysis an(big, 3.0);
    const ZoneSpec spec = ZoneSpec::paper();
    const auto a =
        make_zone(an, {big.site(0, 0), big.site(0, 2)}, spec);
    const auto b =
        make_zone(an, {big.site(0, 3), big.site(0, 5)}, spec);
    const auto c =
        make_zone(an, {big.site(30, 30), big.site(30, 32)}, spec);
    EXPECT_EQ(zones_conflict(big, a, b), zones_conflict(an, a, b));
    EXPECT_EQ(zones_conflict(big, a, c), zones_conflict(an, a, c));
    EXPECT_EQ(
        make_zone(big, {big.site(0, 0), big.site(0, 2)}, spec).radius,
        a.radius);
}

} // namespace
} // namespace naq
