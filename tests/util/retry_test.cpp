/**
 * @file
 * Bounded deterministic retry: the backoff schedule is a pure function
 * of (policy, attempt), retry_call honors the attempt budget, treats
 * exceptions as retryable transients, and reports the real attempt
 * count — asserted with a recording sleeper, never by waiting.
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/retry.h"

namespace naq {
namespace {

TEST(RetryPolicyTest, BackoffScheduleIsGeometricAndCapped)
{
    const RetryPolicy policy{5, 2.0, 3.0, 10.0};
    EXPECT_EQ(backoff_delay_ms(policy, 1), 0.0); // First try: no wait.
    EXPECT_EQ(backoff_delay_ms(policy, 2), 2.0);
    EXPECT_EQ(backoff_delay_ms(policy, 3), 6.0);
    EXPECT_EQ(backoff_delay_ms(policy, 4), 10.0); // 18 capped.
    EXPECT_EQ(backoff_delay_ms(policy, 5), 10.0);
}

TEST(RetryPolicyTest, IoDefaultsAreThreeTries)
{
    const RetryPolicy io = RetryPolicy::io();
    EXPECT_EQ(io.max_attempts, 3u);
    EXPECT_EQ(backoff_delay_ms(io, 2), 1.0);
    EXPECT_EQ(backoff_delay_ms(io, 3), 4.0);
    EXPECT_EQ(RetryPolicy::none().max_attempts, 1u);
}

TEST(RetryCallTest, FirstTrySuccessNeverSleeps)
{
    std::vector<double> slept;
    const RetryResult res = retry_call(
        RetryPolicy::io(), [](std::string &) { return true; },
        [&](double ms) { slept.push_back(ms); });
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_TRUE(res.error.empty());
    EXPECT_TRUE(slept.empty());
}

TEST(RetryCallTest, TransientFailureRecoversWithBackoff)
{
    std::vector<double> slept;
    size_t calls = 0;
    const RetryResult res = retry_call(
        RetryPolicy::io(),
        [&](std::string &err) {
            if (++calls < 3) {
                err = "busy";
                return false;
            }
            return true;
        },
        [&](double ms) { slept.push_back(ms); });
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.attempts, 3u);
    ASSERT_EQ(slept.size(), 2u);
    EXPECT_EQ(slept[0], 1.0);
    EXPECT_EQ(slept[1], 4.0);
}

TEST(RetryCallTest, ExhaustedBudgetReportsLastError)
{
    size_t calls = 0;
    const RetryResult res = retry_call(
        RetryPolicy::io(),
        [&](std::string &err) {
            err = "fail #" + std::to_string(++calls);
            return false;
        },
        [](double) {});
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.attempts, 3u);
    EXPECT_EQ(res.error, "fail #3");
    EXPECT_EQ(calls, 3u);
}

TEST(RetryCallTest, ExceptionsAreRetryableTransients)
{
    size_t calls = 0;
    const RetryResult res = retry_call(
        RetryPolicy::io(),
        [&](std::string &) -> bool {
            if (++calls < 2)
                throw std::runtime_error("torn pipe");
            return true;
        },
        [](double) {});
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.attempts, 2u);
}

TEST(RetryCallTest, SingleAttemptPolicyNeverRetries)
{
    size_t calls = 0;
    const RetryResult res = retry_call(
        RetryPolicy::none(),
        [&](std::string &err) {
            ++calls;
            err = "nope";
            return false;
        },
        [](double) { FAIL() << "none() must not sleep"; });
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_EQ(calls, 1u);
}

} // namespace
} // namespace naq
