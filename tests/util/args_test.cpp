#include "util/args.h"

#include <gtest/gtest.h>

#include <vector>

namespace naq {
namespace {

/** Build an Args from a brace list (argv[0] is a dummy program name). */
Args
parse(std::vector<const char *> tokens, int start = 1)
{
    tokens.insert(tokens.begin(), "prog");
    return Args(static_cast<int>(tokens.size()), tokens.data(), start);
}

TEST(ArgsTest, KeyValueAndFlags)
{
    const Args args = parse({"--bench", "cuccaro", "--size", "30",
                             "--optimize"});
    EXPECT_EQ(args.get("bench"), "cuccaro");
    EXPECT_EQ(args.get_num("size", 0), 30.0);
    EXPECT_TRUE(args.has("optimize"));
    EXPECT_EQ(args.get("optimize"), "");
    EXPECT_FALSE(args.has("absent"));
    EXPECT_EQ(args.get("absent", "fallback"), "fallback");
    EXPECT_EQ(args.get_num("absent", 7.5), 7.5);
}

TEST(ArgsTest, NegativeNumericValues)
{
    // The historical bug: "argv[i+1][0] != '-'" treated "-1" as the
    // next option and silently swallowed the value.
    const Args args =
        parse({"--seed", "-1", "--mid", "-2.5", "--frac", "-.5"});
    EXPECT_EQ(args.get("seed"), "-1");
    EXPECT_EQ(args.get_num("seed", 0), -1.0);
    EXPECT_EQ(args.get_num("mid", 0), -2.5);
    EXPECT_EQ(args.get_num("frac", 0), -0.5);
}

TEST(ArgsTest, FlagFollowedByOptionStaysBoolean)
{
    const Args args = parse({"--optimize", "--explain", "--out", "f.q"});
    EXPECT_TRUE(args.has("optimize"));
    EXPECT_EQ(args.get("optimize"), "");
    EXPECT_TRUE(args.has("explain"));
    EXPECT_EQ(args.get("out"), "f.q");
}

TEST(ArgsTest, KeyEqualsValueForm)
{
    // "=" binds even values that look like options.
    const Args args = parse({"--size=30", "--name=--weird", "--empty="});
    EXPECT_EQ(args.get_num("size", 0), 30.0);
    EXPECT_EQ(args.get("name"), "--weird");
    EXPECT_TRUE(args.has("empty"));
    EXPECT_EQ(args.get("empty"), "");
}

TEST(ArgsTest, StartOffsetSkipsSubcommand)
{
    std::vector<const char *> argv{"naqc", "compile", "--size", "20"};
    const Args args(static_cast<int>(argv.size()), argv.data(), 2);
    EXPECT_EQ(args.get_num("size", 0), 20.0);
    EXPECT_FALSE(args.has("compile"));
}

TEST(ArgsTest, MalformedInputThrows)
{
    EXPECT_THROW(parse({"stray"}), ArgsError);
    EXPECT_THROW(parse({"--ok", "value", "stray"}), ArgsError);
    EXPECT_THROW(parse({"--"}), ArgsError);
    // A lone dash-word is neither an option nor a value.
    EXPECT_THROW(parse({"--key", "-notanumber", "-x"}), ArgsError);
}

TEST(ArgsTest, GetNumRejectsNonNumbers)
{
    const Args args = parse({"--bench", "cuccaro", "--shots"});
    EXPECT_THROW(args.get_num("bench", 0), ArgsError);
    // Present-but-empty (boolean use of a numeric flag) also throws.
    EXPECT_THROW(args.get_num("shots", 500), ArgsError);
}

TEST(ArgsTest, LooksLikeValueClassification)
{
    EXPECT_TRUE(Args::looks_like_value("cuccaro"));
    EXPECT_TRUE(Args::looks_like_value("30"));
    EXPECT_TRUE(Args::looks_like_value("-1"));
    EXPECT_TRUE(Args::looks_like_value("-2.5"));
    EXPECT_TRUE(Args::looks_like_value("-.5"));
    EXPECT_TRUE(Args::looks_like_value(""));
    EXPECT_FALSE(Args::looks_like_value("-"));
    EXPECT_FALSE(Args::looks_like_value("--flag"));
    EXPECT_FALSE(Args::looks_like_value("-x"));
}

} // namespace
} // namespace naq
