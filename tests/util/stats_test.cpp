#include "util/stats.h"

#include <cmath>
#include <gtest/gtest.h>

namespace naq {
namespace {

TEST(RunningStatTest, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, SingleValue)
{
    RunningStat s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatTest, KnownMeanAndStddev)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample stddev of that classic set: sqrt(32/7).
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, NegativeValues)
{
    RunningStat s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(StatsTest, MeanOfVector)
{
    EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(StatsTest, StddevOfVector)
{
    EXPECT_DOUBLE_EQ(stddev_of({5.0, 5.0, 5.0}), 0.0);
    EXPECT_DOUBLE_EQ(stddev_of({1.0}), 0.0);
    EXPECT_NEAR(stddev_of({1.0, 3.0}), std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, PercentileInterpolates)
{
    std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile_of(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile_of(xs, 50.0), 25.0);
}

TEST(StatsTest, PercentileUnsortedInput)
{
    EXPECT_DOUBLE_EQ(percentile_of({30.0, 10.0, 20.0}, 50.0), 20.0);
}

TEST(StatsTest, PercentileEmptyIsNaN)
{
    EXPECT_TRUE(std::isnan(percentile_of({}, 50.0)));
}

} // namespace
} // namespace naq
