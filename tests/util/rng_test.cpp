#include "util/rng.h"

#include <algorithm>
#include <gtest/gtest.h>

namespace naq {
namespace {

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 2);
}

TEST(RngTest, ZeroSeedIsValid)
{
    Rng r(0);
    EXPECT_NE(r.next_u64(), r.next_u64());
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double x = r.uniform();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntRespectsBound)
{
    Rng r(11);
    std::vector<int> hist(7, 0);
    for (int i = 0; i < 7000; ++i) {
        const uint64_t v = r.uniform_int(7);
        ASSERT_LT(v, 7u);
        ++hist[v];
    }
    for (int count : hist)
        EXPECT_NEAR(count, 1000, 150);
}

TEST(RngTest, UniformIntBoundOneAlwaysZero)
{
    Rng r(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.uniform_int(1), 0u);
}

TEST(RngTest, BernoulliEdgeCases)
{
    Rng r(5);
    for (int i = 0; i < 20; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
        EXPECT_FALSE(r.bernoulli(-1.0));
        EXPECT_TRUE(r.bernoulli(2.0));
    }
}

TEST(RngTest, BernoulliFrequency)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(hits, 3000, 200);
}

TEST(RngTest, ShuffleIsPermutation)
{
    Rng r(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    auto copy = v;
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, sorted);
}

TEST(RngTest, ShuffleActuallyShuffles)
{
    Rng r(19);
    std::vector<int> v(50);
    for (int i = 0; i < 50; ++i)
        v[i] = i;
    const auto before = v;
    r.shuffle(v);
    EXPECT_NE(v, before);
}

TEST(RngTest, ForkProducesIndependentStream)
{
    Rng parent(23);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next_u64() == child.next_u64();
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace naq
