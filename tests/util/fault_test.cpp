/**
 * @file
 * Deterministic fault injection: spec parsing, counted hit windows,
 * qualifier-scoped counters, and the interplay with the atomic file
 * writer and its retry loop (a window shorter than the retry budget
 * is healed; a longer one surfaces as a failure — with the real
 * attempt count either way).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "util/fault.h"
#include "util/io.h"
#include "util/retry.h"

namespace naq {
namespace {

/** Fresh local injector per test — never the global one. */
class FaultInjectorTest : public ::testing::Test
{
  protected:
    FaultInjector inj;
};

TEST_F(FaultInjectorTest, DisarmedChecksAreFree)
{
    EXPECT_FALSE(inj.armed());
    EXPECT_FALSE(inj.check(fault_site::kSinkWrite).has_value());
    EXPECT_EQ(inj.fired(), 0u);
    // Disarmed checks do not even count hits.
    EXPECT_EQ(inj.hits(fault_site::kSinkWrite), 0u);
}

TEST_F(FaultInjectorTest, SingleHitWindowFiresExactlyOnce)
{
    inj.arm("sink-write:2");
    EXPECT_FALSE(inj.check(fault_site::kSinkWrite).has_value());
    const auto hit = inj.check(fault_site::kSinkWrite);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->status, CompileStatus::IoError);
    EXPECT_NE(hit->detail.find("sink-write"), std::string::npos);
    EXPECT_FALSE(inj.check(fault_site::kSinkWrite).has_value());
    EXPECT_EQ(inj.hits(fault_site::kSinkWrite), 3u);
    EXPECT_EQ(inj.fired(), 1u);
}

TEST_F(FaultInjectorTest, RangeWindowCoversEveryHitInIt)
{
    inj.arm("pass-entry:2-4");
    size_t fired = 0;
    for (int i = 0; i < 6; ++i)
        fired += inj.check(fault_site::kPassEntry).has_value();
    EXPECT_EQ(fired, 3u);
}

TEST_F(FaultInjectorTest, ExplicitStatusOverridesIoErrorDefault)
{
    inj.arm("pass-entry:1:routing-stuck");
    const auto hit = inj.check(fault_site::kPassEntry);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->status, CompileStatus::RoutingStuck);
}

TEST_F(FaultInjectorTest, QualifierScopesTheCounter)
{
    inj.arm("pass-entry=route:1");
    // Other passes do not advance the (site, qualifier) counter.
    EXPECT_FALSE(inj.check(fault_site::kPassEntry, "map").has_value());
    EXPECT_FALSE(inj.check(fault_site::kPassEntry, "map").has_value());
    EXPECT_TRUE(inj.check(fault_site::kPassEntry, "route").has_value());
}

TEST_F(FaultInjectorTest, CommaSeparatedRulesAreIndependent)
{
    inj.arm("sink-write:1,memo-insert:2");
    EXPECT_TRUE(inj.check(fault_site::kSinkWrite).has_value());
    EXPECT_FALSE(inj.check(fault_site::kMemoInsert).has_value());
    EXPECT_TRUE(inj.check(fault_site::kMemoInsert).has_value());
    EXPECT_EQ(inj.fired(), 2u);
}

TEST_F(FaultInjectorTest, RearmingResetsCountersAndDisarmStops)
{
    inj.arm("sink-write:1");
    EXPECT_TRUE(inj.check(fault_site::kSinkWrite).has_value());
    inj.arm("sink-write:1"); // Counter restarts at zero.
    EXPECT_TRUE(inj.check(fault_site::kSinkWrite).has_value());
    inj.disarm();
    EXPECT_FALSE(inj.armed());
    EXPECT_FALSE(inj.check(fault_site::kSinkWrite).has_value());
    inj.arm(""); // Empty spec also disarms.
    EXPECT_FALSE(inj.armed());
}

TEST_F(FaultInjectorTest, MalformedSpecsThrow)
{
    EXPECT_THROW(inj.arm("sink-write"), std::runtime_error);
    EXPECT_THROW(inj.arm("sink-write:0"), std::runtime_error);
    EXPECT_THROW(inj.arm("sink-write:3-2"), std::runtime_error);
    EXPECT_THROW(inj.arm("sink-write:x"), std::runtime_error);
    EXPECT_THROW(inj.arm("sink-write:1:no-such-status"),
                 std::runtime_error);
    // Forcing success or the default state is meaningless.
    EXPECT_THROW(inj.arm("sink-write:1:ok"), std::runtime_error);
    EXPECT_THROW(inj.arm("sink-write:1:not-run"), std::runtime_error);
}

/** Scoped arming of the global injector (production sites use it). */
class GlobalFaultGuard
{
  public:
    explicit GlobalFaultGuard(const std::string &spec)
    {
        FaultInjector::global().arm(spec);
    }
    ~GlobalFaultGuard() { FaultInjector::global().disarm(); }
};

TEST(FaultAtomicWriteTest, RetryHealsAWindowShorterThanTheBudget)
{
    const std::string path = ::testing::TempDir() + "naq_fault_heal";
    {
        // Two injected failures, three attempts: third try lands.
        const GlobalFaultGuard guard("sink-write:1-2");
        const RetryResult res =
            write_text_file_atomic_retry(path, "payload\n");
        EXPECT_TRUE(res.ok);
        EXPECT_EQ(res.attempts, 3u);
    }
    EXPECT_EQ(read_text_file(path), "payload\n");
    std::remove(path.c_str());
}

TEST(FaultAtomicWriteTest, ExhaustedRetriesLeaveNoArtifact)
{
    const std::string path = ::testing::TempDir() + "naq_fault_fail";
    std::remove(path.c_str());
    {
        const GlobalFaultGuard guard("sink-write:1-9");
        const RetryResult res =
            write_text_file_atomic_retry(path, "payload\n");
        EXPECT_FALSE(res.ok);
        EXPECT_EQ(res.attempts, 3u);
        EXPECT_NE(res.error.find("injected"), std::string::npos);
    }
    // Atomicity: the failed write left neither target nor tmp file.
    EXPECT_EQ(std::remove(path.c_str()), -1);
}

TEST(FaultAtomicWriteTest, QualifiedRuleOnlyHitsItsPath)
{
    const std::string a = ::testing::TempDir() + "naq_fault_a";
    const std::string b = ::testing::TempDir() + "naq_fault_b";
    {
        const GlobalFaultGuard guard("sink-write=" + a + ":1-9");
        std::string err;
        EXPECT_FALSE(write_text_file_atomic(a, "a\n", err));
        EXPECT_TRUE(write_text_file_atomic(b, "b\n", err));
    }
    EXPECT_EQ(read_text_file(b), "b\n");
    std::remove(a.c_str());
    std::remove(b.c_str());
}

} // namespace
} // namespace naq
