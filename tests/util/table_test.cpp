#include "util/table.h"

#include <gtest/gtest.h>

namespace naq {
namespace {

TEST(TableTest, TextContainsTitleHeaderRows)
{
    Table t("demo");
    t.header({"a", "bb"});
    t.row({"1", "2"});
    const std::string text = t.to_text();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("bb"), std::string::npos);
    EXPECT_NE(text.find("1"), std::string::npos);
}

TEST(TableTest, CsvFormat)
{
    Table t("demo");
    t.header({"x", "y"});
    t.row({"1", "2"});
    t.row({"3", "4"});
    EXPECT_EQ(t.to_csv(), "x,y\n1,2\n3,4\n");
}

TEST(TableTest, ArityMismatchThrows)
{
    Table t("demo");
    t.header({"x", "y"});
    EXPECT_THROW(t.row({"only one"}), std::invalid_argument);
}

TEST(TableTest, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
    EXPECT_EQ(Table::sci(0.00123, 1), "1.2e-03");
}

TEST(TableTest, ColumnsAligned)
{
    Table t("demo");
    t.header({"name", "v"});
    t.row({"x", "100"});
    t.row({"longer", "1"});
    const std::string text = t.to_text();
    // Both data rows start their second column at the same offset.
    const size_t line1 = text.find("x ");
    const size_t line2 = text.find("longer");
    ASSERT_NE(line1, std::string::npos);
    ASSERT_NE(line2, std::string::npos);
    const size_t col1 = text.find("100", line1) - line1;
    const size_t col2 = text.find("1\n", line2) - line2;
    EXPECT_EQ(col1, col2);
}

} // namespace
} // namespace naq
