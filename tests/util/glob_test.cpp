#include "util/glob.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace naq {
namespace {

namespace fs = std::filesystem;

TEST(GlobMatchTest, LiteralAndWildcards)
{
    EXPECT_TRUE(glob_match("bell.qasm", "bell.qasm"));
    EXPECT_FALSE(glob_match("bell.qasm", "bell.qasm2"));
    EXPECT_TRUE(glob_match("*.qasm", "bell.qasm"));
    EXPECT_FALSE(glob_match("*.qasm", "bell.json"));
    EXPECT_TRUE(glob_match("bell?.qasm", "bell2.qasm"));
    EXPECT_FALSE(glob_match("bell?.qasm", "bell.qasm"));
    EXPECT_TRUE(glob_match("*", "anything at all"));
    EXPECT_TRUE(glob_match("a*b*c", "a-x-b-y-c"));
    EXPECT_FALSE(glob_match("a*b*c", "a-x-c-y-b"));
    EXPECT_TRUE(glob_match("**", ""));
    EXPECT_FALSE(glob_match("?", ""));
}

TEST(GlobMatchTest, StarBacktracksPastFalseAnchors)
{
    // First "ab" anchor fails to finish the pattern; the star must
    // backtrack and re-anchor on the second one.
    EXPECT_TRUE(glob_match("*ab", "ab-then-ab"));
    EXPECT_TRUE(glob_match("x*yz", "x-y-yz"));
}

class GlobFilesTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // ctest runs each test in its own process: the directory name
        // must be unique across concurrent processes, not just within
        // one (pid), and across tests within a process (test name).
        dir_ = fs::temp_directory_path() /
               ("naq_glob_test_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_ / "sub");
        touch("b.qasm");
        touch("a.qasm");
        touch("c.txt");
        touch("sub/d.qasm");
    }

    void TearDown() override { fs::remove_all(dir_); }

    void touch(const std::string &rel)
    {
        std::ofstream out(dir_ / rel);
        out << "// stub\n";
    }

    std::string path(const std::string &rel) const
    {
        return (dir_ / rel).string();
    }

    fs::path dir_;
};

TEST_F(GlobFilesTest, MatchesAreSortedAndFiltered)
{
    const std::vector<std::string> got =
        glob_files(path("*.qasm"));
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], path("a.qasm")); // Sorted, b.qasm created first.
    EXPECT_EQ(got[1], path("b.qasm"));
}

TEST_F(GlobFilesTest, QuestionMarkMatchesOneCharacter)
{
    const std::vector<std::string> got = glob_files(path("?.qasm"));
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], path("a.qasm"));
}

TEST_F(GlobFilesTest, NoWildcardRequiresExistingFile)
{
    EXPECT_EQ(glob_files(path("a.qasm")),
              std::vector<std::string>{path("a.qasm")});
    EXPECT_THROW(glob_files(path("missing.qasm")),
                 std::runtime_error);
}

TEST_F(GlobFilesTest, MissingDirectoryThrows)
{
    try {
        glob_files(path("nope/*.qasm"));
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("no such directory"),
                  std::string::npos);
    }
}

TEST_F(GlobFilesTest, EmptyMatchIsNotAnError)
{
    EXPECT_TRUE(glob_files(path("*.nomatch")).empty());
}

TEST_F(GlobFilesTest, DirectoriesAreNeverMatched)
{
    // "sub" matches "*" but is a directory, not a regular file.
    const std::vector<std::string> got = glob_files(path("*"));
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], path("a.qasm"));
    EXPECT_EQ(got[1], path("b.qasm"));
    EXPECT_EQ(got[2], path("c.txt"));
}

TEST_F(GlobFilesTest, SubdirectoryPatternsKeepThePrefix)
{
    const std::vector<std::string> got =
        glob_files(path("sub/*.qasm"));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], path("sub/d.qasm"));
}

TEST(GlobFilesEdge, EmptyPatternThrows)
{
    EXPECT_THROW(glob_files(""), std::runtime_error);
}

} // namespace
} // namespace naq
