#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace naq {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForWritesPerIndexSlots)
{
    // The determinism contract: slot i is written by exactly one
    // thread, so the result equals the sequential loop's.
    ThreadPool pool(3);
    std::vector<size_t> out(257, 0);
    pool.parallel_for(out.size(), [&](size_t i) { out[i] = i * i; });
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsOnCaller)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.num_workers(), 0u);
    std::vector<int> out(10, 0);
    pool.parallel_for(out.size(), [&](size_t i) { out[i] = 1; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 10);
}

TEST(ThreadPoolTest, EmptyRangeIsANoop)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallel_for(0, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, MoreWorkersThanItems)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    pool.parallel_for(3, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ExceptionPropagatesAfterLoopDrains)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    EXPECT_THROW(pool.parallel_for(100,
                                   [&](size_t i) {
                                       ++count;
                                       if (i == 17)
                                           throw std::runtime_error("x");
                                   }),
                 std::runtime_error);
    // Every index still ran (the loop drains before rethrowing).
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitAndWaitIdle)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossLoops)
{
    ThreadPool pool(2);
    for (int round = 0; round < 5; ++round) {
        std::atomic<int> count{0};
        pool.parallel_for(20, [&](size_t) { ++count; });
        EXPECT_EQ(count.load(), 20);
    }
}

TEST(ThreadPoolTest, HardwareWorkersIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardware_workers(), 1u);
}

} // namespace
} // namespace naq
