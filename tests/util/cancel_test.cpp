/**
 * @file
 * Cooperative cancellation primitives: token semantics, deadline
 * arithmetic, and the RunControl arming/polling contract (cancel wins
 * over expiry; unarmed controls never interrupt).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "util/cancel.h"

namespace naq {
namespace {

TEST(CancelTokenTest, StartsClearAndLatchesOnce)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    token.request_cancel();
    EXPECT_TRUE(token.cancelled());
    token.request_cancel(); // Idempotent.
    EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, VisibleAcrossThreads)
{
    CancelToken token;
    std::thread setter([&] { token.request_cancel(); });
    setter.join();
    EXPECT_TRUE(token.cancelled());
}

TEST(DeadlineTest, DefaultNeverExpires)
{
    const Deadline d;
    EXPECT_FALSE(d.is_set());
    EXPECT_FALSE(d.expired());
    EXPECT_TRUE(std::isinf(d.remaining_ms()));
    EXPECT_FALSE(Deadline::never().is_set());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately)
{
    const Deadline d = Deadline::after_ms(0.0);
    EXPECT_TRUE(d.is_set());
    EXPECT_TRUE(d.expired());
    EXPECT_LE(d.remaining_ms(), 0.0);
}

TEST(DeadlineTest, GenerousBudgetHasNotExpired)
{
    const Deadline d = Deadline::after_ms(60'000.0);
    EXPECT_TRUE(d.is_set());
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remaining_ms(), 1'000.0);
}

TEST(RunControlTest, UnarmedNeverInterrupts)
{
    const RunControl control;
    EXPECT_FALSE(control.armed());
    EXPECT_EQ(control.poll(), RunControl::Interrupt::None);
}

TEST(RunControlTest, ArmedByTokenOrDeadline)
{
    CancelToken token;
    RunControl by_token;
    by_token.cancel = &token;
    EXPECT_TRUE(by_token.armed());
    EXPECT_EQ(by_token.poll(), RunControl::Interrupt::None);

    RunControl by_deadline;
    by_deadline.deadline = Deadline::after_ms(60'000.0);
    EXPECT_TRUE(by_deadline.armed());
    EXPECT_EQ(by_deadline.poll(), RunControl::Interrupt::None);
}

TEST(RunControlTest, PollReportsTheInterrupt)
{
    CancelToken token;
    RunControl control;
    control.cancel = &token;
    token.request_cancel();
    EXPECT_EQ(control.poll(), RunControl::Interrupt::Cancelled);

    RunControl expired;
    expired.deadline = Deadline::after_ms(0.0);
    EXPECT_EQ(expired.poll(), RunControl::Interrupt::DeadlineExpired);
}

TEST(RunControlTest, CancellationWinsOverExpiry)
{
    CancelToken token;
    token.request_cancel();
    RunControl control;
    control.cancel = &token;
    control.deadline = Deadline::after_ms(0.0);
    EXPECT_EQ(control.poll(), RunControl::Interrupt::Cancelled);
}

} // namespace
} // namespace naq
