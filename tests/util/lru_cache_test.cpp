/**
 * @file
 * LruCache: bounded capacity, least-recently-used eviction, and the
 * property the recompile cache relies on — entries that keep getting
 * hit survive an arbitrarily long stream of cold insertions.
 */
#include <gtest/gtest.h>

#include <string>

#include "util/lru_cache.h"

namespace naq {
namespace {

TEST(LruCacheTest, BasicPutGet)
{
    LruCache<std::string, int> cache(4);
    EXPECT_EQ(cache.get("a"), nullptr);
    cache.put("a", 1);
    cache.put("b", 2);
    ASSERT_NE(cache.get("a"), nullptr);
    EXPECT_EQ(*cache.get("a"), 1);
    EXPECT_EQ(*cache.get("b"), 2);
    EXPECT_EQ(cache.size(), 2u);

    cache.put("a", 10); // Overwrite keeps one entry.
    EXPECT_EQ(*cache.get("a"), 10);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed)
{
    LruCache<int, int> cache(3);
    cache.put(1, 1);
    cache.put(2, 2);
    cache.put(3, 3);
    ASSERT_NE(cache.get(1), nullptr); // 1 becomes most recent.
    cache.put(4, 4);                  // Evicts 2 (least recent).
    EXPECT_EQ(cache.get(2), nullptr);
    EXPECT_NE(cache.get(1), nullptr);
    EXPECT_NE(cache.get(3), nullptr);
    EXPECT_NE(cache.get(4), nullptr);
    EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCacheTest, HotKeySurvivesLongColdSweep)
{
    // The recompile-cache scenario: one hot mask re-hit between
    // floods of cold masks far beyond capacity. The old wholesale
    // clear dropped it at every threshold crossing; LRU never does.
    LruCache<int, int> cache(8);
    cache.put(-1, 42);
    for (int cold = 0; cold < 4096; ++cold) {
        cache.put(cold, cold);
        ASSERT_NE(cache.get(-1), nullptr) << "after cold key " << cold;
        EXPECT_EQ(*cache.get(-1), 42);
        EXPECT_LE(cache.size(), 8u);
    }
}

TEST(LruCacheTest, ZeroCapacityDisablesCaching)
{
    LruCache<int, int> cache(0);
    cache.put(1, 1);
    EXPECT_EQ(cache.get(1), nullptr);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ClearEmptiesEverything)
{
    LruCache<int, int> cache(4);
    cache.put(1, 1);
    cache.put(2, 2);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.get(1), nullptr);
    cache.put(3, 3); // Still usable after clear.
    EXPECT_NE(cache.get(3), nullptr);
}

} // namespace
} // namespace naq
