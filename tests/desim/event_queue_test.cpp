#include "desim/event_queue.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace naq::desim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    EXPECT_DOUBLE_EQ(q.run(), 3.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.events_run(), 3u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, TiesBreakInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(1.0, [&, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[size_t(i)], i);
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    std::vector<double> times;
    q.schedule(0.0, [&] {
        times.push_back(q.now());
        q.schedule_in(1.5, [&] {
            times.push_back(q.now());
            q.schedule_in(0.5, [&] { times.push_back(q.now()); });
        });
    });
    EXPECT_DOUBLE_EQ(q.run(), 2.0);
    ASSERT_EQ(times.size(), 3u);
    EXPECT_DOUBLE_EQ(times[0], 0.0);
    EXPECT_DOUBLE_EQ(times[1], 1.5);
    EXPECT_DOUBLE_EQ(times[2], 2.0);
}

TEST(EventQueueTest, PastSchedulingThrows)
{
    EventQueue q;
    q.schedule(1.0, [&] {
        // Genuinely in the past: a causality bug, not float noise.
        EXPECT_THROW(q.schedule(0.5, [] {}), std::logic_error);
        // Within epsilon of now: clamped, not fatal.
        EXPECT_NO_THROW(q.schedule(1.0 - 1e-15, [] {}));
    });
    q.run();
}

TEST(EventQueueTest, ResetClearsClockAndPending)
{
    EventQueue q;
    q.schedule(5.0, [] {});
    q.run();
    EXPECT_DOUBLE_EQ(q.now(), 5.0);
    q.reset();
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
    EXPECT_EQ(q.pending(), 0u);
    bool ran = false;
    q.schedule(1.0, [&] { ran = true; });
    q.run();
    EXPECT_TRUE(ran);
}

} // namespace
} // namespace naq::desim
