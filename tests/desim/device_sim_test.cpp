#include "desim/device_sim.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "benchmarks/benchmarks.h"
#include "core/compiler.h"

namespace naq::desim {
namespace {

CompiledCircuit
compile_bench(const Circuit &logical, const GridTopology &topo,
              double mid)
{
    GridTopology device = topo;
    const CompileResult res =
        compile(logical, device, CompilerOptions::neutral_atom(mid));
    EXPECT_TRUE(res.success);
    return res.compiled;
}

/** Hand-built two-step schedule: h q0 ; cx q0,q1 (adjacent sites). */
CompiledCircuit
tiny_schedule()
{
    CompiledCircuit c;
    c.schedule.push_back({Gate::h(0), 0});
    c.schedule.push_back({Gate::cx(0, 1), 1});
    c.num_timesteps = 2;
    c.num_program_qubits = 2;
    c.num_sites = 4;
    return c;
}

TEST(DeviceSimTest, TinyScheduleMakespanIsSumOfSteps)
{
    const GridTopology topo(2, 2);
    const DeviceSim sim(topo, BackendProfile::neutral_atom());
    const SimResult r = sim.run(tiny_schedule());
    // Lockstep: h (1e-6) then cx (1e-6), serial.
    EXPECT_DOUBLE_EQ(r.makespan_s, 2e-6);
    EXPECT_EQ(r.num_ops, 2u);
    ASSERT_EQ(r.log.size(), 2u);
    EXPECT_EQ(r.log[0].kind, SimEvent::Kind::Gate);
    EXPECT_DOUBLE_EQ(r.log[0].start_s, 0.0);
    EXPECT_DOUBLE_EQ(r.log[1].start_s, 1e-6);
}

TEST(DeviceSimTest, MeasureBillsReadoutTime)
{
    CompiledCircuit c = tiny_schedule();
    c.schedule.push_back({Gate::measure(1), 2});
    c.num_timesteps = 3;
    const GridTopology topo(2, 2);
    const DeviceSim sim(topo, BackendProfile::neutral_atom());
    const SimResult r = sim.run(c);
    EXPECT_DOUBLE_EQ(r.makespan_s, 2e-6 + 1e-4);
    EXPECT_EQ(r.log.back().kind, SimEvent::Kind::Measure);
}

TEST(DeviceSimTest, RoutingSwapIsDistanceDependentTransport)
{
    CompiledCircuit c;
    Gate swap = Gate::swap(0, 2); // Sites 2 units apart on a 1x4 row.
    swap.is_routing = true;
    c.schedule.push_back({swap, 0});
    c.num_timesteps = 1;
    c.num_program_qubits = 2;
    c.num_sites = 4;
    const GridTopology topo(1, 4);
    BackendProfile p = BackendProfile::neutral_atom();
    const DeviceSim sim(topo, p);
    const SimResult r = sim.run(c);
    ASSERT_EQ(r.log.size(), 1u);
    EXPECT_EQ(r.log[0].kind, SimEvent::Kind::Move);
    EXPECT_DOUBLE_EQ(r.makespan_s,
                     p.move_fixed_s + 2.0 * p.move_per_unit_s);
    EXPECT_DOUBLE_EQ(r.move_s, r.makespan_s);
}

TEST(DeviceSimTest, LaneContentionQueuesMoves)
{
    // Three same-step routing swaps on disjoint sites, one AOD lane:
    // they must serialize, in schedule order.
    CompiledCircuit c;
    for (uint32_t i = 0; i < 3; ++i) {
        Gate swap = Gate::swap(2 * i, 2 * i + 1);
        swap.is_routing = true;
        c.schedule.push_back({swap, 0});
    }
    c.num_timesteps = 1;
    c.num_program_qubits = 6;
    c.num_sites = 6;
    const GridTopology topo(1, 6);
    BackendProfile p = BackendProfile::neutral_atom();
    p.aod_lanes = 1;
    const DeviceSim sim(topo, p);
    const SimResult r = sim.run(c);
    const double one = p.move_fixed_s + p.move_per_unit_s;
    EXPECT_DOUBLE_EQ(r.makespan_s, 3.0 * one);
    EXPECT_EQ(r.lanes.waits, 2u);
    EXPECT_EQ(r.lanes.max_queue, 2u);
    ASSERT_EQ(r.log.size(), 3u);
    // Schedule order preserved under contention.
    EXPECT_EQ(r.log[0].index, 0u);
    EXPECT_EQ(r.log[1].index, 1u);
    EXPECT_EQ(r.log[2].index, 2u);
    EXPECT_DOUBLE_EQ(r.log[1].start_s, one);
    EXPECT_DOUBLE_EQ(r.log[2].start_s, 2.0 * one);
    // With unlimited lanes the same schedule runs fully parallel.
    p.aod_lanes = 0;
    const SimResult free_r = DeviceSim(topo, p).run(c);
    EXPECT_DOUBLE_EQ(free_r.makespan_s, one);
    EXPECT_EQ(free_r.lanes.waits, 0u);
}

TEST(DeviceSimTest, DataflowBeatsLockstepOnSlack)
{
    // Two independent chains of different step counts: lockstep walks
    // the global timestep grid, dataflow lets the short chain finish
    // early and the long chain never wait.
    CompiledCircuit c;
    c.schedule.push_back({Gate::h(0), 0});
    c.schedule.push_back({Gate::h(1), 0});
    c.schedule.push_back({Gate::h(0), 1});
    c.schedule.push_back({Gate::measure(1), 1});
    c.num_timesteps = 2;
    c.num_program_qubits = 2;
    c.num_sites = 4;
    const GridTopology topo(2, 2);
    BackendProfile p = BackendProfile::neutral_atom();
    p.mode = ScheduleMode::Lockstep;
    const SimResult lock = DeviceSim(topo, p).run(c);
    p.mode = ScheduleMode::Dataflow;
    const SimResult flow = DeviceSim(topo, p).run(c);
    // Lockstep: step 0 ends at measure-start only after both h's...
    // makespan = 1e-6 + max(1e-6, 1e-4).
    EXPECT_DOUBLE_EQ(lock.makespan_s, 1e-6 + 1e-4);
    // Dataflow: q1's measure starts at 1e-6 too — same here — but
    // q0's second h does not wait for the measure.
    EXPECT_DOUBLE_EQ(flow.makespan_s, 1e-6 + 1e-4);
    const auto start_of = [](const SimResult &r, uint32_t idx) {
        for (const SimEvent &e : r.log)
            if (e.index == idx)
                return e.start_s;
        return -1.0;
    };
    EXPECT_DOUBLE_EQ(start_of(flow, 2), 1e-6);
    EXPECT_DOUBLE_EQ(start_of(lock, 2), 1e-6);
}

TEST(DeviceSimTest, ZoneSlotSerializesInteractions)
{
    // Two disjoint CX at the same timestep, one interaction zone.
    CompiledCircuit c;
    c.schedule.push_back({Gate::cx(0, 1), 0});
    c.schedule.push_back({Gate::cx(2, 3), 0});
    c.num_timesteps = 1;
    c.num_program_qubits = 4;
    c.num_sites = 4;
    const GridTopology topo(1, 4);
    BackendProfile p = BackendProfile::trapped_ion();
    const DeviceSim sim(topo, p);
    const SimResult r = sim.run(c);
    EXPECT_DOUBLE_EQ(r.makespan_s, 2.0 * p.gate_2q_s);
    EXPECT_EQ(r.zones.waits, 1u);
}

TEST(DeviceSimTest, FixupTailIsSerialAfterTheCircuit)
{
    const GridTopology topo(2, 2);
    BackendProfile p = BackendProfile::neutral_atom();
    const DeviceSim sim(topo, p);
    SimOptions opts;
    opts.fixup_swaps = 2;
    const SimResult r = sim.run(tiny_schedule(), opts);
    // 2 steps + 2 serialized fixups at 3 x gate_2q each.
    EXPECT_DOUBLE_EQ(r.makespan_s, 2e-6 + 2.0 * 3.0 * p.gate_2q_s);
    ASSERT_EQ(r.log.size(), 4u);
    EXPECT_EQ(r.log[2].kind, SimEvent::Kind::Fixup);
    EXPECT_EQ(r.log[3].kind, SimEvent::Kind::Fixup);
    EXPECT_GT(r.log[3].start_s, r.log[2].start_s);
}

TEST(DeviceSimTest, EventLogIsBitIdenticalAcrossRuns)
{
    const GridTopology topo(10, 10);
    const CompiledCircuit compiled =
        compile_bench(benchmarks::qft_adder(16), topo, 3.0);
    const DeviceSim sim(topo, BackendProfile::neutral_atom());
    const SimResult a = sim.run(compiled);
    const SimResult b = sim.run(compiled);
    ASSERT_EQ(a.log.size(), b.log.size());
    EXPECT_TRUE(std::equal(a.log.begin(), a.log.end(),
                           b.log.begin()));
    EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.num_events, b.num_events);
}

TEST(DeviceSimTest, LossOverlayIsDeterministicAndDoomsLaterOps)
{
    const GridTopology topo(10, 10);
    const CompiledCircuit compiled =
        compile_bench(benchmarks::qft_adder(16), topo, 3.0);
    const DeviceSim sim(topo, BackendProfile::neutral_atom());
    SimOptions opts;
    opts.p_loss_used = 0.2; // High rate: losses guaranteed-ish.
    opts.p_loss_background = 0.01;
    opts.loss_seed = 99;
    const SimResult a = sim.run(compiled, opts);
    const SimResult b = sim.run(compiled, opts);
    EXPECT_EQ(a.losses, b.losses);
    EXPECT_EQ(a.doomed_ops, b.doomed_ops);
    ASSERT_EQ(a.log.size(), b.log.size());
    EXPECT_TRUE(std::equal(a.log.begin(), a.log.end(),
                           b.log.begin()));
    // The overlay never changes timing.
    const SimResult clean = sim.run(compiled);
    EXPECT_DOUBLE_EQ(a.makespan_s, clean.makespan_s);
    // A different seed draws a different overlay (with these rates on
    // 100 sites, collision odds are negligible).
    opts.loss_seed = 100;
    const SimResult c = sim.run(compiled, opts);
    const bool same_overlay =
        a.log.size() == c.log.size() &&
        std::equal(a.log.begin(), a.log.end(), c.log.begin());
    EXPECT_FALSE(same_overlay);
    // Doomed ops only exist once something was lost.
    if (a.losses == 0)
        EXPECT_EQ(a.doomed_ops, 0u);
    EXPECT_EQ(a.interfered, a.doomed_ops > 0);
}

TEST(DeviceSimTest, StatsReportMentionsEveryResource)
{
    const GridTopology topo(2, 2);
    const DeviceSim sim(topo, BackendProfile::neutral_atom());
    const SimResult r = sim.run(tiny_schedule());
    const std::string report = r.print_stats("tiny");
    EXPECT_NE(report.find("sites"), std::string::npos);
    EXPECT_NE(report.find("aod-lanes"), std::string::npos);
    EXPECT_NE(report.find("zone-slots"), std::string::npos);
    EXPECT_NE(report.find("makespan"), std::string::npos);
}

TEST(DeviceSimTest, KindNamesAreUniqueAndNamed)
{
    const SimEvent::Kind kinds[] = {
        SimEvent::Kind::Move, SimEvent::Kind::Gate,
        SimEvent::Kind::Measure, SimEvent::Kind::Fixup,
        SimEvent::Kind::Loss};
    std::vector<std::string> names;
    for (const SimEvent::Kind k : kinds) {
        const std::string name = sim_event_kind_name(k);
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?");
        EXPECT_EQ(std::count(names.begin(), names.end(), name), 0);
        names.push_back(name);
    }
}

TEST(DeviceSimTest, EmptyScheduleIsZeroMakespan)
{
    const GridTopology topo(2, 2);
    const DeviceSim sim(topo, BackendProfile::neutral_atom());
    CompiledCircuit empty;
    empty.num_sites = 4;
    const SimResult r = sim.run(empty);
    EXPECT_DOUBLE_EQ(r.makespan_s, 0.0);
    EXPECT_EQ(r.num_ops, 0u);
    EXPECT_TRUE(r.log.empty());
}

} // namespace
} // namespace naq::desim
