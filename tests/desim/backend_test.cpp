#include "desim/backend.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace naq::desim {
namespace {

TEST(BackendProfileTest, BuiltinsResolveByName)
{
    EXPECT_EQ(BackendProfile::resolve("neutral_atom").name,
              "neutral-atom");
    EXPECT_EQ(BackendProfile::resolve("neutral-atom").name,
              "neutral-atom");
    EXPECT_EQ(BackendProfile::resolve("trapped_ion").name,
              "trapped-ion");
    EXPECT_EQ(BackendProfile::resolve("").name, "neutral-atom");
}

TEST(BackendProfileTest, TrappedIonSerializesInteractions)
{
    const BackendProfile p = BackendProfile::trapped_ion();
    EXPECT_EQ(p.zone_slots, 1u);
    EXPECT_FALSE(p.moves_are_transports);
    EXPECT_EQ(p.mode, ScheduleMode::Dataflow);
    EXPECT_GT(p.gate_2q_s, BackendProfile::neutral_atom().gate_2q_s);
}

TEST(BackendProfileTest, ContentionFreeIsUniform)
{
    const BackendProfile p = BackendProfile::contention_free(1e-6);
    EXPECT_DOUBLE_EQ(p.gate_1q_s, 1e-6);
    EXPECT_DOUBLE_EQ(p.gate_2q_s, 1e-6);
    EXPECT_DOUBLE_EQ(p.gate_mq_s, 1e-6);
    EXPECT_DOUBLE_EQ(p.measure_s, 1e-6);
    EXPECT_DOUBLE_EQ(p.move_fixed_s, 1e-6);
    EXPECT_DOUBLE_EQ(p.move_per_unit_s, 0.0);
    EXPECT_EQ(p.aod_lanes, 0u);
    EXPECT_EQ(p.zone_slots, 0u);
    EXPECT_EQ(p.mode, ScheduleMode::Lockstep);
}

TEST(BackendProfileTest, ParsesKeyValueText)
{
    const BackendProfile p = BackendProfile::from_text(
        "# a hypothetical machine\n"
        "name = toy\n"
        "gate_2q_s = 7e-6   # trailing comment\n"
        "aod_lanes = 2\n"
        "mode = dataflow\n"
        "moves_are_transports = 0\n");
    EXPECT_EQ(p.name, "toy");
    EXPECT_DOUBLE_EQ(p.gate_2q_s, 7e-6);
    EXPECT_EQ(p.aod_lanes, 2u);
    EXPECT_EQ(p.mode, ScheduleMode::Dataflow);
    EXPECT_FALSE(p.moves_are_transports);
    // Unstated keys keep the neutral-atom defaults.
    EXPECT_DOUBLE_EQ(p.gate_1q_s,
                     BackendProfile::neutral_atom().gate_1q_s);
}

TEST(BackendProfileTest, RejectsMalformedText)
{
    EXPECT_THROW(BackendProfile::from_text("no equals sign"),
                 std::runtime_error);
    EXPECT_THROW(BackendProfile::from_text("unknown_key = 3"),
                 std::runtime_error);
    EXPECT_THROW(BackendProfile::from_text("gate_2q_s = fast"),
                 std::runtime_error);
    EXPECT_THROW(BackendProfile::from_text("aod_lanes = -1"),
                 std::runtime_error);
    EXPECT_THROW(BackendProfile::from_text("mode = sometimes"),
                 std::runtime_error);
}

TEST(BackendProfileTest, ShippedProfilesMatchBuiltins)
{
    // The bench/backends/ files are the file-format mirror of the
    // built-ins; a drift here means docs and code disagree.
    const std::string root = NAQ_SOURCE_DIR;
    const BackendProfile na = BackendProfile::from_file(
        root + "/bench/backends/neutral_atom.backend");
    const BackendProfile na_ref = BackendProfile::neutral_atom();
    EXPECT_EQ(na.name, na_ref.name);
    EXPECT_DOUBLE_EQ(na.gate_2q_s, na_ref.gate_2q_s);
    EXPECT_DOUBLE_EQ(na.measure_s, na_ref.measure_s);
    EXPECT_DOUBLE_EQ(na.move_fixed_s, na_ref.move_fixed_s);
    EXPECT_EQ(na.aod_lanes, na_ref.aod_lanes);
    EXPECT_EQ(na.mode, na_ref.mode);

    const BackendProfile ti = BackendProfile::from_file(
        root + "/bench/backends/trapped_ion.backend");
    const BackendProfile ti_ref = BackendProfile::trapped_ion();
    EXPECT_EQ(ti.name, ti_ref.name);
    EXPECT_DOUBLE_EQ(ti.gate_2q_s, ti_ref.gate_2q_s);
    EXPECT_EQ(ti.zone_slots, ti_ref.zone_slots);
    EXPECT_EQ(ti.mode, ti_ref.mode);
    EXPECT_EQ(ti.moves_are_transports, ti_ref.moves_are_transports);
}

} // namespace
} // namespace naq::desim
